//===- core/pipeline/PassCache.h - Pass-result memoisation -----*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memoisation of pass results across compilations that share inputs — the
/// ROADMAP "Per-pass caching" item. A QAOA parameter sweep recompiles the
/// same (formula, geometry) under varying gamma/beta/layers; the cache
/// lets the pipeline skip everything those parameters do not influence.
///
/// Two tiers, under two keys:
///
///  * Front half — the clause colouring and zone plan depend only on
///    (formula, geometry, colouring options). Keyed on exactly those; a
///    hit skips straight to ShuttleSchedulingPass.
///  * Program template — at fixed layers the emitted program differs
///    across gamma/beta only in angle values, each an exact power-of-two
///    multiple of one parameter (AngleSlot). The tier caches the program
///    with its recorded angle slots plus the angle-independent pulse
///    stats, keyed on every pipeline input except gamma/beta; a hit
///    copies the template, patches the slots (bit-identical to direct
///    emission), and skips gate lowering and the pulse-emission replay.
///
/// Keys hash the full input payload and compare it exactly on lookup, so
/// hash collisions cannot alias entries. All operations are mutex-guarded:
/// one cache may be shared by every worker of a BatchCompiler sweep.
///
/// The cache is also durable: saveSnapshot() serializes both tiers to a
/// versioned, checksummed file keyed by the key payloads plus a compiler
/// fingerprint (git hash + format/schema versions), and loadSnapshot()
/// mmaps such a file back. Loading deserializes only the key index; the
/// section payloads stay in the mapping and are materialized lazily on
/// the first hit, so a warm start costs index deserialization, not
/// template re-materialization. Any defect in a cache file — truncation,
/// checksum mismatch, wrong version or fingerprint — fails the load and
/// leaves the cache to compile cold; a hostile file can never crash the
/// process or alias a wrong entry. Multi-process sweeps persist one
/// segment file per shard (same format) and compact them with
/// mergeSnapshots(); see tools/shard_sweep.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_CORE_PIPELINE_PASSCACHE_H
#define WEAVER_CORE_PIPELINE_PASSCACHE_H

#include "core/pipeline/CompilationContext.h"

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace weaver {

class MappedFile;

namespace core {
namespace pipeline {

/// Exact-match cache key: a flat word payload (formula, options, hardware)
/// plus its hash. Lookups compare the payload, never just the hash.
class PassCacheKey {
public:
  /// Key of the front half: formula + geometry + colouring options.
  static PassCacheKey frontHalf(const CompilationContext &Ctx);
  /// Key of the program template: every pipeline input except gamma/beta.
  /// Extends an already-built front-half key so the formula payload is
  /// serialized and hashed only once per compile.
  static PassCacheKey program(const PassCacheKey &FrontKey,
                              const CompilationContext &Ctx);

  uint64_t hash() const { return Hash; }
  friend bool operator==(const PassCacheKey &A, const PassCacheKey &B) {
    return A.Hash == B.Hash && A.Words == B.Words;
  }

  /// The exact payload; what the snapshot format persists per entry.
  const std::vector<uint64_t> &words() const { return Words; }
  /// Rebuilds a key from a persisted payload (the hash is recomputed, so
  /// a corrupted payload simply becomes a key that matches nothing).
  static PassCacheKey fromWords(std::vector<uint64_t> W) {
    PassCacheKey K;
    K.Words = std::move(W);
    K.finish();
    return K;
  }

private:
  void add(uint64_t Word);
  void add(double Value);
  void finish();

  std::vector<uint64_t> Words;
  uint64_t Hash = 0;
};

/// Context sections produced by ClauseColoringPass and ZonePlanningPass.
struct FrontHalfSections {
  ClauseColoring Coloring;
  std::vector<ColorPlan> Plans;
  std::vector<Vec2> SlmTraps;
  std::map<std::pair<int, int>, int> ZoneSiteTrap;
  int NumColumns = 0;
};

/// Context sections produced by GateLoweringPass and PulseEmissionPass:
/// the program template with its parameterised angle slots, and the
/// gamma/beta-independent pulse statistics.
struct ProgramSections {
  qasm::WqasmProgram Program;
  std::vector<AngleSlot> AngleSlots;
  fpqa::PulseStats Stats;
};

/// A cache hit handed to Pass::restoreSections. Front is set on both
/// tiers; Back only on a program-template hit.
struct PassCacheEntry {
  std::shared_ptr<const FrontHalfSections> Front;
  std::shared_ptr<const ProgramSections> Back;
};

/// Mutable entry under construction: passes fill their sections via
/// Pass::saveSections as they run; PassManager inserts the finished tiers.
struct PassCacheEntryBuilder {
  FrontHalfSections Front;
  ProgramSections Back;
  bool SavedColoring = false;
  bool SavedPlan = false;
  bool SavedProgram = false;
  bool SavedStats = false;
};

// --- Persistence constants (on-disk snapshot format v1) ------------------
//
// Layout: a 40-byte header followed by the payload.
//   [0]  u64 magic ("WVRCACHE", little-endian)
//   [8]  u32 format version
//   [12] u32 reserved (0)
//   [16] u64 compiler fingerprint (see compilerFingerprint())
//   [24] u64 payload byte count
//   [32] u64 FNV-1a checksum of the payload
//   [40] payload: front-section pool, front-tier index, program-tier
//        index (see PassCachePersist.cpp)
// Tests patch these offsets directly to forge hostile headers.
inline constexpr uint64_t SnapshotMagic = 0x4548434143525657ull; // "WVRCACHE"
inline constexpr uint32_t SnapshotFormatVersion = 1;
inline constexpr size_t SnapshotHeaderBytes = 40;

/// Identity of the compiler that wrote a snapshot: git hash baked in at
/// configure time, the snapshot format version, and the option-schema
/// sizes the cache keys enumerate. Any mismatch invalidates a cache file
/// wholesale — a stale template from another compiler build must never
/// be instantiated.
uint64_t compilerFingerprint();

/// Thread-safe two-tier memoisation store. See file comment.
class PassCache {
public:
  /// Hit/miss counters. A program-tier hit does not consult (or count)
  /// the front tier; a program-tier miss falls through to a counted
  /// front-tier lookup.
  struct CacheStats {
    uint64_t FrontHits = 0;
    uint64_t FrontMisses = 0;
    uint64_t ProgramHits = 0;
    uint64_t ProgramMisses = 0;
    /// Sections parsed on demand out of a mapped snapshot — how many
    /// hits were served from disk rather than from in-process inserts.
    uint64_t Materializations = 0;
  };

  /// \p MaxEntries bounds the total entry count across both tiers; the
  /// cache is flushed when an insertion would exceed it (sweep working
  /// sets are far smaller). 0 means unbounded.
  explicit PassCache(size_t MaxEntries = 1024) : MaxEntries(MaxEntries) {}

  /// Program-template lookup; on a hit both Front and Back are set.
  PassCacheEntry lookupProgram(const PassCacheKey &Key);
  /// Front-half lookup (counted only after a program-tier miss).
  std::shared_ptr<const FrontHalfSections> lookupFront(const PassCacheKey &Key);

  /// Inserts the front sections; returns the stored copy (the previously
  /// cached one when another worker raced the insertion).
  std::shared_ptr<const FrontHalfSections>
  insertFront(const PassCacheKey &Key, FrontHalfSections Sections);
  /// Inserts a program template linked to the front sections stored under
  /// \p FrontKey (inserting \p Front there first when absent — the link
  /// is what lets a snapshot share one front payload between tiers).
  void insertProgram(const PassCacheKey &Key, const PassCacheKey &FrontKey,
                     std::shared_ptr<const FrontHalfSections> Front,
                     ProgramSections Sections);

  // --- Persistence (implemented in PassCachePersist.cpp) ----------------

  /// Serializes both tiers to \p Path atomically (temp + rename). Entries
  /// that were loaded from a snapshot and never materialized are copied
  /// byte-for-byte, so a load-then-save round trip (the shard merge path)
  /// never parses section payloads. \p Fingerprint defaults to this
  /// build's compilerFingerprint(); tests override it to forge mismatches.
  Status saveSnapshot(const std::string &Path) const;
  Status saveSnapshot(const std::string &Path, uint64_t Fingerprint) const;

  /// Maps \p Path and merges its entries into this cache (keys already
  /// present are kept, not overwritten — first writer wins). Only the key
  /// index is deserialized here; section payloads materialize lazily on
  /// first hit. On any validation failure (unreadable, truncated, bad
  /// magic/version/checksum, fingerprint != \p ExpectFingerprint) nothing
  /// is inserted and the error is returned — callers fall back to a cold
  /// compile.
  Status loadSnapshot(const std::string &Path);
  Status loadSnapshot(const std::string &Path, uint64_t ExpectFingerprint);

  /// Compacts shard segment files into one snapshot: loads every input
  /// (first file wins on duplicate keys) and saves the union to
  /// \p Output. Fails on the first unreadable/invalid input.
  static Status mergeSnapshots(const std::vector<std::string> &Inputs,
                               const std::string &Output);
  /// Tolerant variant for crash-recovery paths: when \p Skipped is
  /// non-null, an unreadable/invalid input is recorded there ("path:
  /// reason") and skipped instead of failing the merge — its entries
  /// simply recompute as cold misses on the next run.
  static Status mergeSnapshots(const std::vector<std::string> &Inputs,
                               const std::string &Output,
                               std::vector<std::string> *Skipped);

  CacheStats stats() const;
  /// Total entries across both tiers.
  size_t size() const;
  void clear();

private:
  /// Byte range of a section payload inside a mapped snapshot; File is
  /// null for entries inserted in-process.
  struct LazyBlob {
    std::shared_ptr<MappedFile> File;
    size_t Offset = 0;
    size_t Len = 0;
  };
  /// One stored front-half section set: either materialized (Value set),
  /// or still a byte range of the snapshot it was loaded from. Shared by
  /// the front tier and every program entry built on it.
  struct FrontCell {
    std::shared_ptr<const FrontHalfSections> Value;
    LazyBlob Blob;
  };
  /// One stored program template, linked to its front cell.
  struct ProgramCell {
    std::shared_ptr<FrontCell> Front;
    std::shared_ptr<const ProgramSections> Value;
    LazyBlob Blob;
  };

  template <typename T>
  using KeyedMap =
      std::unordered_map<uint64_t, std::vector<std::pair<PassCacheKey, T>>>;

  /// Parse-on-demand of a loaded cell; return false (a miss) on a parse
  /// failure — insertFront/insertProgram then refill the slot. Callers
  /// hold Mutex.
  bool materializeFrontLocked(FrontCell &Cell);
  bool materializeProgramLocked(ProgramCell &Cell);
  /// Flushes both tiers when an insertion would exceed MaxEntries;
  /// caller holds Mutex.
  void evictForInsertLocked();

  mutable std::mutex Mutex;
  KeyedMap<std::shared_ptr<FrontCell>> FrontMap;
  KeyedMap<std::shared_ptr<ProgramCell>> ProgramMap;
  CacheStats Counts;
  size_t MaxEntries;
  size_t NumEntries = 0;
};

/// Writes Coeff * (Gamma or Beta) into every recorded slot of \p Program.
/// Bit-identical to direct emission because every coefficient is an exact
/// power of two (see AngleSlot).
void patchProgramAngles(qasm::WqasmProgram &Program,
                        const std::vector<AngleSlot> &Slots, double Gamma,
                        double Beta);

} // namespace pipeline
} // namespace core
} // namespace weaver

#endif // WEAVER_CORE_PIPELINE_PASSCACHE_H
