//===- core/pipeline/PassCache.h - Pass-result memoisation -----*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memoisation of pass results across compilations that share inputs — the
/// ROADMAP "Per-pass caching" item. A QAOA parameter sweep recompiles the
/// same (formula, geometry) under varying gamma/beta/layers; the cache
/// lets the pipeline skip everything those parameters do not influence.
///
/// Two tiers, under two keys:
///
///  * Front half — the clause colouring and zone plan depend only on
///    (formula, geometry, colouring options). Keyed on exactly those; a
///    hit skips straight to ShuttleSchedulingPass.
///  * Program template — at fixed layers the emitted program differs
///    across gamma/beta only in angle values, each an exact power-of-two
///    multiple of one parameter (AngleSlot). The tier caches the program
///    with its recorded angle slots plus the angle-independent pulse
///    stats, keyed on every pipeline input except gamma/beta; a hit
///    copies the template, patches the slots (bit-identical to direct
///    emission), and skips gate lowering and the pulse-emission replay.
///
/// Keys hash the full input payload and compare it exactly on lookup, so
/// hash collisions cannot alias entries. All operations are mutex-guarded:
/// one cache may be shared by every worker of a BatchCompiler sweep.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_CORE_PIPELINE_PASSCACHE_H
#define WEAVER_CORE_PIPELINE_PASSCACHE_H

#include "core/pipeline/CompilationContext.h"

#include <memory>
#include <mutex>
#include <unordered_map>

namespace weaver {
namespace core {
namespace pipeline {

/// Exact-match cache key: a flat word payload (formula, options, hardware)
/// plus its hash. Lookups compare the payload, never just the hash.
class PassCacheKey {
public:
  /// Key of the front half: formula + geometry + colouring options.
  static PassCacheKey frontHalf(const CompilationContext &Ctx);
  /// Key of the program template: every pipeline input except gamma/beta.
  /// Extends an already-built front-half key so the formula payload is
  /// serialized and hashed only once per compile.
  static PassCacheKey program(const PassCacheKey &FrontKey,
                              const CompilationContext &Ctx);

  uint64_t hash() const { return Hash; }
  friend bool operator==(const PassCacheKey &A, const PassCacheKey &B) {
    return A.Hash == B.Hash && A.Words == B.Words;
  }

private:
  void add(uint64_t Word);
  void add(double Value);
  void finish();

  std::vector<uint64_t> Words;
  uint64_t Hash = 0;
};

/// Context sections produced by ClauseColoringPass and ZonePlanningPass.
struct FrontHalfSections {
  ClauseColoring Coloring;
  std::vector<ColorPlan> Plans;
  std::vector<Vec2> SlmTraps;
  std::map<std::pair<int, int>, int> ZoneSiteTrap;
  int NumColumns = 0;
};

/// Context sections produced by GateLoweringPass and PulseEmissionPass:
/// the program template with its parameterised angle slots, and the
/// gamma/beta-independent pulse statistics.
struct ProgramSections {
  qasm::WqasmProgram Program;
  std::vector<AngleSlot> AngleSlots;
  fpqa::PulseStats Stats;
};

/// A cache hit handed to Pass::restoreSections. Front is set on both
/// tiers; Back only on a program-template hit.
struct PassCacheEntry {
  std::shared_ptr<const FrontHalfSections> Front;
  std::shared_ptr<const ProgramSections> Back;
};

/// Mutable entry under construction: passes fill their sections via
/// Pass::saveSections as they run; PassManager inserts the finished tiers.
struct PassCacheEntryBuilder {
  FrontHalfSections Front;
  ProgramSections Back;
  bool SavedColoring = false;
  bool SavedPlan = false;
  bool SavedProgram = false;
  bool SavedStats = false;
};

/// Thread-safe two-tier memoisation store. See file comment.
class PassCache {
public:
  /// Hit/miss counters. A program-tier hit does not consult (or count)
  /// the front tier; a program-tier miss falls through to a counted
  /// front-tier lookup.
  struct CacheStats {
    uint64_t FrontHits = 0;
    uint64_t FrontMisses = 0;
    uint64_t ProgramHits = 0;
    uint64_t ProgramMisses = 0;
  };

  /// \p MaxEntries bounds the total entry count across both tiers; the
  /// cache is flushed when an insertion would exceed it (sweep working
  /// sets are far smaller). 0 means unbounded.
  explicit PassCache(size_t MaxEntries = 1024) : MaxEntries(MaxEntries) {}

  /// Program-template lookup; on a hit both Front and Back are set.
  PassCacheEntry lookupProgram(const PassCacheKey &Key);
  /// Front-half lookup (counted only after a program-tier miss).
  std::shared_ptr<const FrontHalfSections> lookupFront(const PassCacheKey &Key);

  /// Inserts the front sections; returns the stored copy (the previously
  /// cached one when another worker raced the insertion).
  std::shared_ptr<const FrontHalfSections>
  insertFront(const PassCacheKey &Key, FrontHalfSections Sections);
  /// Inserts a program template linked to its front sections.
  void insertProgram(const PassCacheKey &Key,
                     std::shared_ptr<const FrontHalfSections> Front,
                     ProgramSections Sections);

  CacheStats stats() const;
  /// Total entries across both tiers.
  size_t size() const;
  void clear();

private:
  template <typename T>
  using KeyedMap =
      std::unordered_map<uint64_t, std::vector<std::pair<PassCacheKey, T>>>;

  mutable std::mutex Mutex;
  KeyedMap<std::shared_ptr<const FrontHalfSections>> FrontMap;
  KeyedMap<PassCacheEntry> ProgramMap;
  CacheStats Counts;
  size_t MaxEntries;
  size_t NumEntries = 0;
};

/// Writes Coeff * (Gamma or Beta) into every recorded slot of \p Program.
/// Bit-identical to direct emission because every coefficient is an exact
/// power of two (see AngleSlot).
void patchProgramAngles(qasm::WqasmProgram &Program,
                        const std::vector<AngleSlot> &Slots, double Gamma,
                        double Beta);

} // namespace pipeline
} // namespace core
} // namespace weaver

#endif // WEAVER_CORE_PIPELINE_PASSCACHE_H
