//===- core/pipeline/PassManager.cpp - Pass sequencing --------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/pipeline/PassManager.h"

#include "core/pipeline/ClauseColoringPass.h"
#include "core/pipeline/GateLoweringPass.h"
#include "core/pipeline/PulseEmissionPass.h"
#include "core/pipeline/ShuttleSchedulingPass.h"
#include "core/pipeline/ZonePlanningPass.h"

#include <chrono>

using namespace weaver;
using namespace weaver::core;
using namespace weaver::core::pipeline;

PassManager &PassManager::addPass(std::unique_ptr<Pass> P) {
  Passes.push_back(std::move(P));
  return *this;
}

Status PassManager::run(CompilationContext &Ctx) const {
  for (const std::unique_ptr<Pass> &P : Passes) {
    auto Start = std::chrono::steady_clock::now();
    Status S = P->run(Ctx);
    double Seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - Start)
                         .count();
    Ctx.Timings.push_back({P->name(), Seconds});
    if (S)
      return Status::error(std::string(P->name()) + ": " + S.message());
  }
  return Status::success();
}

PassManager PassManager::standardFpqaPipeline() {
  PassManager PM;
  PM.add<ClauseColoringPass>()
      .add<ZonePlanningPass>()
      .add<ShuttleSchedulingPass>()
      .add<GateLoweringPass>()
      .add<PulseEmissionPass>();
  return PM;
}

PassManager PassManager::codegenPipeline() {
  PassManager PM;
  PM.add<ZonePlanningPass>()
      .add<ShuttleSchedulingPass>()
      .add<GateLoweringPass>();
  return PM;
}
