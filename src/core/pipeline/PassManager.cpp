//===- core/pipeline/PassManager.cpp - Pass sequencing --------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/pipeline/PassManager.h"

#include "core/pipeline/ClauseColoringPass.h"
#include "core/pipeline/GateLoweringPass.h"
#include "core/pipeline/PulseEmissionPass.h"
#include "core/pipeline/ShuttleSchedulingPass.h"
#include "core/pipeline/ZonePlanningPass.h"

#include "support/FaultInjection.h"

#include <chrono>

using namespace weaver;
using namespace weaver::core;
using namespace weaver::core::pipeline;

PassManager &PassManager::addPass(std::unique_ptr<Pass> P) {
  Passes.push_back(std::move(P));
  return *this;
}

Status PassManager::run(CompilationContext &Ctx) const {
  // Memoisation applies only when the pipeline owns the colouring: a
  // driver-supplied colouring is not part of the cache key.
  PassCache *Cache = Ctx.Cache;
  const bool UseCache = Cache && !Ctx.HasColoring && Ctx.Formula;

  PassCacheKey FrontKey, ProgramKey;
  PassCacheEntry Hit;
  bool BuildEntry = false;
  if (UseCache) {
    FrontKey = PassCacheKey::frontHalf(Ctx);
    ProgramKey = PassCacheKey::program(FrontKey, Ctx);
    Hit = Cache->lookupProgram(ProgramKey);
    if (!Hit.Back) {
      Hit.Front = Cache->lookupFront(FrontKey);
      BuildEntry = true;
      // The passes that run will record where gamma/beta live in the
      // program so the entry can serve other parameter points.
      Ctx.CollectAngleSlots = true;
    }
    Ctx.FrontHalfFromCache = Hit.Front != nullptr;
    Ctx.ProgramFromCache = Hit.Back != nullptr;
  }

  PassCacheEntryBuilder Builder;
  for (const std::unique_ptr<Pass> &P : Passes) {
    // Cooperative cancellation: the window between two passes is the only
    // point where aborting cannot leave a half-built section behind. A
    // cancelled run returns before the cache insertions below, so it can
    // never publish partial entries.
    // Injected hang: park between passes (delay_ms caps the stall) until
    // the watchdog or a caller cancels the token. The checkpoint below
    // then converts the wake-up into a normal cooperative abort.
    if (fault::enabled()) {
      fault::Decision D = fault::decide("pipeline.hang");
      if (D.Fire)
        fault::hangUntilCancelled(D.DelayMs, Ctx.Cancel);
    }
    if (Ctx.Cancel && Ctx.Cancel->checkpoint())
      return Status::error(std::string(CancelledDiagnostic) + " before " +
                           P->name());
    auto Start = std::chrono::steady_clock::now();
    bool Restored =
        (Hit.Front || Hit.Back) && P->restoreSections(Hit, Ctx);
    Status S = Restored ? Status::success() : P->run(Ctx);
    double Seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - Start)
                         .count();
    Ctx.Timings.push_back({P->name(), Seconds});
    if (S)
      return Status::error(std::string(P->name()) + ": " + S.message());
    // Sections are captured immediately after the producing pass so later
    // passes cannot have mutated them (gate lowering edits the plans).
    if (BuildEntry && !Restored)
      P->saveSections(Ctx, Builder);
  }

  if (BuildEntry) {
    std::shared_ptr<const FrontHalfSections> Front = Hit.Front;
    if (!Front && Builder.SavedColoring && Builder.SavedPlan)
      Front = Cache->insertFront(FrontKey, std::move(Builder.Front));
    if (Front && Builder.SavedProgram && Builder.SavedStats)
      Cache->insertProgram(ProgramKey, FrontKey, std::move(Front),
                           std::move(Builder.Back));
  }
  return Status::success();
}

PassManager PassManager::standardFpqaPipeline() {
  PassManager PM;
  PM.add<ClauseColoringPass>()
      .add<ZonePlanningPass>()
      .add<ShuttleSchedulingPass>()
      .add<GateLoweringPass>()
      .add<PulseEmissionPass>();
  return PM;
}

PassManager PassManager::codegenPipeline() {
  PassManager PM;
  PM.add<ZonePlanningPass>()
      .add<ShuttleSchedulingPass>()
      .add<GateLoweringPass>();
  return PM;
}
