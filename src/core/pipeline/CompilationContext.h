//===- core/pipeline/CompilationContext.h - Shared pass state --*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compilation context every pass of the FPQA pipeline reads and
/// extends: the input formula and hardware, the clause colouring (§5.2),
/// the zone/site placement plan (§5.3, Fig. 5), the per-boundary shuttle
/// schedules (Algorithm 2), the emitted wQASM program, the replayed pulse
/// statistics, and per-pass timing diagnostics. Passes communicate only
/// through this context, so each stage can be tested (and eventually
/// cached) in isolation.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_CORE_PIPELINE_COMPILATIONCONTEXT_H
#define WEAVER_CORE_PIPELINE_COMPILATIONCONTEXT_H

#include "core/ClauseColoring.h"
#include "core/FpqaCodegen.h"
#include "fpqa/Analysis.h"
#include "fpqa/HardwareParams.h"
#include "qasm/Program.h"
#include "sat/Cnf.h"
#include "support/CancelToken.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace weaver {
namespace core {
namespace pipeline {

/// Per-clause placement plan within a colour (Fig. 5 site assignment).
struct ClausePlan {
  size_t ClauseIndex = 0;
  int Width = 0;          ///< number of literals (1..3)
  int Site = 0;           ///< site index within the colour
  double SiteX = 0;       ///< site centre x
  // Sorted participating qubits. Width==3: Left/Target/Right;
  // Width==2: Left/Right; Width==1: Target only (stays home).
  int Left = -1, Target = -1, Right = -1;
  int ColLeft = -1, ColTarget = -1, ColRight = -1;
  int TargetTrap = -1;    ///< SLM trap index for the target (Width==3)
};

/// One AOD slot: a (qubit, column, resting x) triple for a colour.
struct Slot {
  int Qubit = -1;
  int Column = -1;
  double RestX = 0; ///< x while the colour's triangles are formed
};

/// Placement plan of one colour: its clause sites and AOD slots.
struct ColorPlan {
  std::vector<ClausePlan> Clauses;
  std::vector<Slot> Slots; ///< sorted by RestX ascending
};

/// Planned atom traffic for one colour boundary — one (layer, colour) step
/// of the execution order. Computed by ShuttleSchedulingPass from the
/// simulated row occupancy; executed by GateLoweringPass.
struct BoundarySchedule {
  /// The boundary belongs to a colour without AOD slots; nothing moves.
  bool Empty = true;
  /// The row must visit the pickup row before transfers happen.
  bool NeedPickupShuttle = false;
  /// Row atoms returning to their home traps (Column valid).
  std::vector<Slot> ToUnload;
  /// Home atoms loading onto the row (Column and RestX valid).
  std::vector<Slot> ToLoad;
  /// Column assigned to each slot of the colour's plan.
  std::vector<int> SlotColumn;
  /// Final resting x of EVERY column once the boundary completes.
  std::vector<double> ColumnTargets;
};

/// Wall-clock duration of one executed pass.
struct PassTiming {
  std::string PassName;
  double Seconds = 0;
};

/// One parameterised angle inside the emitted program: the double at the
/// recorded position equals Coeff * (Gamma or Beta). Every coefficient the
/// emitter uses is an exact power of two (±1/4, ±1/2, ±1, 2), so
/// substituting a different parameter value reproduces the directly
/// computed double bit for bit — the property the program-template cache
/// relies on for byte-identical output.
struct AngleSlot {
  enum class Param : uint8_t { Gamma, Beta };
  enum class Field : uint8_t {
    GateParam0,  ///< Statements[Statement].Gate parameter 0
    AnnotationX, ///< Statements[Statement].Annotations[Annotation].AngleX
    AnnotationZ, ///< Statements[Statement].Annotations[Annotation].AngleZ
  };
  uint32_t Statement = 0;
  uint32_t Annotation = 0; ///< meaningful unless Field == GateParam0
  Field Where = Field::GateParam0;
  Param Dep = Param::Gamma;
  double Coeff = 0;
};

class PassCache;

/// All state shared between the pipeline passes. Inputs are set by the
/// driver before PassManager::run; each pass fills its output section.
struct CompilationContext {
  // --- Inputs -----------------------------------------------------------
  const sat::CnfFormula *Formula = nullptr;
  fpqa::HardwareParams Hw;
  CodegenOptions Options;
  /// Colouring heuristic selection when the pipeline colours the formula
  /// itself (ClauseColoringPass); ignored when HasColoring is set.
  bool UseDSatur = true;
  /// Optional memoisation of pass results across compilations sharing the
  /// same formula/geometry (parameter sweeps). Not owned; must outlive the
  /// pipeline run. Ignored when the driver supplied a colouring.
  PassCache *Cache = nullptr;
  /// Optional cooperative cancellation token (not owned). PassManager::run
  /// checks it between passes and aborts with a CancelledDiagnostic status;
  /// a cancelled run inserts nothing into the PassCache.
  const CancelToken *Cancel = nullptr;

  // --- ClauseColoringPass -----------------------------------------------
  ClauseColoring Coloring;
  /// Set when the driver supplied a colouring; ClauseColoringPass then
  /// validates instead of recolouring.
  bool HasColoring = false;

  // --- ZonePlanningPass -------------------------------------------------
  std::vector<ColorPlan> Plans;
  std::vector<Vec2> SlmTraps;      ///< homes first, then zone target traps
  std::map<std::pair<int, int>, int> ZoneSiteTrap; ///< (zone, site) -> trap
  int NumColumns = 0;

  // --- ShuttleSchedulingPass (execution order, layer-major) -------------
  std::vector<BoundarySchedule> Boundaries;
  /// Atoms still on the row after the last layer, unloaded at the end.
  std::vector<Slot> FinalUnload;

  // --- GateLoweringPass -------------------------------------------------
  qasm::WqasmProgram Program;
  /// When set (by PassManager while building a cache entry), the emitter
  /// records where every gamma/beta-dependent angle lives in Program.
  bool CollectAngleSlots = false;
  std::vector<AngleSlot> AngleSlots;

  // --- PulseEmissionPass ------------------------------------------------
  /// Non-owning view of Program's annotations in execution order; valid as
  /// long as Program is not mutated (the annotations themselves are never
  /// copied out of the program).
  std::vector<const qasm::Annotation *> PulseStream;
  fpqa::PulseStats Stats;
  bool HasStats = false;

  // --- Diagnostics ------------------------------------------------------
  std::vector<PassTiming> Timings;
  /// Set when the colouring/zone-planning sections were restored from the
  /// cache instead of recomputed.
  bool FrontHalfFromCache = false;
  /// Set when the whole program was instantiated from a cached template.
  bool ProgramFromCache = false;

  /// Sum of recorded pass durations, excluding \p ExcludedPass (pass an
  /// empty string to sum everything).
  double elapsedSeconds(const std::string &ExcludedPass = "") const {
    double Total = 0;
    for (const PassTiming &T : Timings)
      if (ExcludedPass.empty() || T.PassName != ExcludedPass)
        Total += T.Seconds;
    return Total;
  }
};

} // namespace pipeline
} // namespace core
} // namespace weaver

#endif // WEAVER_CORE_PIPELINE_COMPILATIONCONTEXT_H
