//===- core/pipeline/ZonePlanningPass.cpp - Site placement pass -----------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/pipeline/ZonePlanningPass.h"

#include <algorithm>

using namespace weaver;
using namespace weaver::core;
using namespace weaver::core::pipeline;
using sat::Clause;
using sat::Literal;

Status ZonePlanningPass::run(CompilationContext &Ctx) {
  const sat::CnfFormula &Formula = *Ctx.Formula;
  const ClauseColoring &Coloring = Ctx.Coloring;
  const Layout &L = Ctx.Options.Geometry;
  int NumQubits = Formula.numVariables();

  // Home traps: one per variable, index == qubit id.
  for (int Q = 0; Q < NumQubits; ++Q)
    Ctx.SlmTraps.push_back(L.homePosition(Q));

  Ctx.Plans.resize(Coloring.numColors());
  size_t MaxSlots = 0;
  for (int Color = 0; Color < Coloring.numColors(); ++Color) {
    ColorPlan &Plan = Ctx.Plans[Color];
    // Deterministic site order: ascending smallest qubit.
    std::vector<size_t> ClauseIdxs = Coloring.ClausesByColor[Color];
    std::sort(ClauseIdxs.begin(), ClauseIdxs.end(), [&](size_t A, size_t B) {
      int MinA = Formula.clause(A)[0].variable(),
          MinB = Formula.clause(B)[0].variable();
      for (Literal Lit : Formula.clause(A))
        MinA = std::min(MinA, Lit.variable());
      for (Literal Lit : Formula.clause(B))
        MinB = std::min(MinB, Lit.variable());
      return MinA != MinB ? MinA < MinB : A < B;
    });
    int Site = 0;
    for (size_t CI : ClauseIdxs) {
      const Clause &C = Formula.clause(CI);
      if (C.size() > 3)
        return Status::error("clause " + std::to_string(CI) +
                             " has more than three literals");
      ClausePlan CP;
      CP.ClauseIndex = CI;
      CP.Width = static_cast<int>(C.size());
      std::vector<int> Qs;
      for (Literal Lit : C)
        Qs.push_back(Lit.variable() - 1);
      std::sort(Qs.begin(), Qs.end());
      if (CP.Width == 1) {
        CP.Target = Qs[0]; // executes at home, no site
        Plan.Clauses.push_back(CP);
        continue;
      }
      CP.Site = Site++;
      CP.SiteX = L.sitePosition(Color, CP.Site).X;
      if (CP.Width == 2) {
        CP.Left = Qs[0];
        CP.Right = Qs[1];
      } else {
        CP.Left = Qs[0];
        CP.Target = Qs[1];
        CP.Right = Qs[2];
        // Zone traps are shared by every colour cycled onto the same zone.
        auto Key = std::make_pair(L.zoneOf(Color), CP.Site);
        auto It = Ctx.ZoneSiteTrap.find(Key);
        if (It == Ctx.ZoneSiteTrap.end()) {
          It = Ctx.ZoneSiteTrap
                   .emplace(Key, static_cast<int>(Ctx.SlmTraps.size()))
                   .first;
          Ctx.SlmTraps.push_back(L.sitePosition(Color, CP.Site));
        }
        CP.TargetTrap = It->second;
      }
      Plan.Clauses.push_back(CP);
    }
    // Build the slot list (sorted by resting x since sites ascend).
    for (ClausePlan &CP : Plan.Clauses) {
      if (CP.Width == 2) {
        Plan.Slots.push_back({CP.Left, -1, CP.SiteX - 2 * L.TriangleHalfWidth});
        Plan.Slots.push_back(
            {CP.Right, -1, CP.SiteX + 2 * L.TriangleHalfWidth});
      } else if (CP.Width == 3) {
        Plan.Slots.push_back({CP.Left, -1, CP.SiteX - L.TriangleHalfWidth});
        Plan.Slots.push_back({CP.Target, -1, CP.SiteX});
        Plan.Slots.push_back({CP.Right, -1, CP.SiteX + L.TriangleHalfWidth});
      }
    }
    MaxSlots = std::max(MaxSlots, Plan.Slots.size());
  }
  Ctx.NumColumns = static_cast<int>(MaxSlots);
  // Columns are assigned per colour by ShuttleSchedulingPass: with atom
  // reuse enabled the assignment depends on which atoms the previous
  // colour left on the row.
  return Status::success();
}

void ZonePlanningPass::saveSections(const CompilationContext &Ctx,
                                    PassCacheEntryBuilder &Builder) const {
  // Called right after run(), before GateLoweringPass records column
  // assignments on the plans — the cached copy stays pristine.
  Builder.Front.Plans = Ctx.Plans;
  Builder.Front.SlmTraps = Ctx.SlmTraps;
  Builder.Front.ZoneSiteTrap = Ctx.ZoneSiteTrap;
  Builder.Front.NumColumns = Ctx.NumColumns;
  Builder.SavedPlan = true;
}

bool ZonePlanningPass::restoreSections(const PassCacheEntry &Entry,
                                       CompilationContext &Ctx) const {
  if (!Entry.Front)
    return false;
  Ctx.Plans = Entry.Front->Plans; // deep copy: lowering mutates the plans
  Ctx.SlmTraps = Entry.Front->SlmTraps;
  Ctx.ZoneSiteTrap = Entry.Front->ZoneSiteTrap;
  Ctx.NumColumns = Entry.Front->NumColumns;
  return true;
}
