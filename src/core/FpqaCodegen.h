//===- core/FpqaCodegen.h - Pulse-level FPQA code generation ---*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a coloured MAX-3SAT QAOA program to an annotated wQASM program:
/// every logical gate statement carries the FPQA pulse/movement annotations
/// executed for it (paper §4.2). The generator implements all three
/// wOptimizer passes end to end:
///  * clause colouring decides which clauses share a zone (input),
///  * colour shuttling moves atoms between home traps and diagonal zones
///    with order-preserving parallel column moves (§5.3, Algorithm 2),
///  * 3-qubit gate compression emits each clause as 2 CCZ + 2 CZ pulses
///    plus Raman rotations (§5.4, Fig. 7) — or, when compression is not
///    profitable on the target hardware, as the pure CZ ladder.
///
/// Every emitted annotation is validated against the FpqaDevice state
/// machine during generation, so the produced program satisfies all
/// Table 1 pre-conditions by construction.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_CORE_FPQACODEGEN_H
#define WEAVER_CORE_FPQACODEGEN_H

#include "core/ClauseColoring.h"
#include "core/Layout.h"
#include "fpqa/HardwareParams.h"
#include "qaoa/Builder.h"
#include "qasm/Program.h"
#include "support/Status.h"

namespace weaver {
namespace core {

/// Code generation options.
struct CodegenOptions {
  Layout Geometry;
  qaoa::QaoaParams Qaoa;
  /// Use the Fig. 7 CCZ fragments. When false, clauses lower to CZ-only
  /// ladders (ablation / unprofitable-CCZ fallback).
  bool UseCompression = true;
  /// Keep atoms needed by the next colour in their AOD traps instead of
  /// returning them to SLM home traps — the core saving of the paper's
  /// colour shuttling pass (§5.3, Algorithm 2: "transfer_to_aod(a) //
  /// Used in next color"). Disable for the ablation study.
  bool ReuseAodAtoms = true;
  /// Emit trailing measurements.
  bool Measure = false;
};

/// Result of lowering: an annotated program plus the flat pulse stream.
struct CodegenResult {
  qasm::WqasmProgram Program;
  /// All annotations of Program in order (setup + per-statement).
  std::vector<qasm::Annotation> pulseStream() const;
};

/// Generates the wQASM program for \p Formula under colouring \p Coloring.
/// Fails only if the formula is malformed (clause wider than 3 literals).
Expected<CodegenResult> generateFpqaProgram(const sat::CnfFormula &Formula,
                                            const ClauseColoring &Coloring,
                                            const fpqa::HardwareParams &Hw,
                                            const CodegenOptions &Options);

} // namespace core
} // namespace weaver

#endif // WEAVER_CORE_FPQACODEGEN_H
