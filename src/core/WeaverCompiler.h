//===- core/WeaverCompiler.h - End-to-end Weaver pipeline ------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point of the Weaver FPQA path (paper Fig. 3): clause
/// colouring -> colour shuttling -> 3-qubit gate compression -> wQASM +
/// pulse generation, with optional wChecker verification and the metrics
/// the evaluation reports (compile time, pulses, execution time, EPS).
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_CORE_WEAVERCOMPILER_H
#define WEAVER_CORE_WEAVERCOMPILER_H

#include "core/ClauseColoring.h"
#include "core/FpqaCodegen.h"
#include "core/WChecker.h"
#include "core/pipeline/CompilationContext.h"
#include "fpqa/Analysis.h"

#include <optional>

namespace weaver {
namespace core {

/// Pipeline configuration.
struct WeaverOptions {
  fpqa::HardwareParams Hw;
  qaoa::QaoaParams Qaoa;
  Layout Geometry;

  /// Gate-compression policy (§5.4): Auto consults
  /// HardwareParams::cczCompressionProfitable().
  enum class CompressionMode { Auto, On, Off };
  CompressionMode Compression = CompressionMode::Auto;

  /// Use DSatur (Algorithm 1); false selects the first-fit ablation.
  bool UseDSatur = true;
  /// Keep atoms used by consecutive colours on the AOD (§5.3, Algorithm 2).
  /// False returns every atom home between colours (ablation).
  bool ReuseAodAtoms = true;
  /// Append measurements to the generated program.
  bool Measure = false;
  /// Run the wChecker after compilation (stage 2 runs when the register
  /// is small enough and a reference circuit is requested).
  bool RunChecker = false;
  CheckOptions Checker;

  /// Optional pass-result memoisation shared across compilations (not
  /// owned; must outlive every compile using it). Parameter sweeps over
  /// the same formula reuse the colouring/zone plan and, across
  /// gamma/beta points, the whole program template — output stays byte
  /// identical with the cache on or off. Safe to share between threads
  /// (the cache is internally mutex-guarded); see pipeline/PassCache.h.
  pipeline::PassCache *Cache = nullptr;

  /// Optional cooperative cancellation (not owned; must outlive the
  /// compile). The pipeline checks the token between passes; a cancelled
  /// compile returns a Status recognised by isCancelledStatus() and
  /// publishes nothing into the cache. See support/CancelToken.h.
  const CancelToken *Cancel = nullptr;
};

/// Everything the pipeline produces.
struct WeaverResult {
  qasm::WqasmProgram Program;   ///< annotated wQASM output
  ClauseColoring Coloring;      ///< §5.2 result
  bool CompressionUsed = false; ///< §5.4 decision
  fpqa::PulseStats Stats;       ///< pulses / duration / EPS (§8)
  double CompileSeconds = 0;    ///< wall-clock compile time
  /// Per-pass wall-clock breakdown of the pipeline run (diagnostics; the
  /// pulse-emission replay is excluded from CompileSeconds).
  std::vector<pipeline::PassTiming> PassTimings;
  /// Cache diagnostics: whether the colouring/zone plan, respectively the
  /// whole program template, were restored instead of recomputed.
  bool FrontHalfFromCache = false;
  bool ProgramFromCache = false;
  std::optional<CheckReport> Check; ///< present when RunChecker was set
};

/// Compiles \p Formula for the FPQA backend.
Expected<WeaverResult> compileWeaver(const sat::CnfFormula &Formula,
                                     const WeaverOptions &Options = {});

} // namespace core
} // namespace weaver

#endif // WEAVER_CORE_WEAVERCOMPILER_H
