//===- core/FpqaCodegen.cpp - Pulse-level FPQA code generation -----------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Thin compatibility wrapper: the code generation logic formerly living
/// in this file is now the pass pipeline under core/pipeline/
/// (ZonePlanningPass -> ShuttleSchedulingPass -> GateLoweringPass). This
/// entry point keeps the original signature for callers that bring their
/// own clause colouring.
///
//===----------------------------------------------------------------------===//

#include "core/FpqaCodegen.h"

#include "core/pipeline/PassManager.h"

using namespace weaver;
using namespace weaver::core;

std::vector<qasm::Annotation> CodegenResult::pulseStream() const {
  std::vector<qasm::Annotation> Stream;
  for (const qasm::GateStatement &S : Program.Statements)
    for (const qasm::Annotation &A : S.Annotations)
      Stream.push_back(A);
  for (const qasm::Annotation &A : Program.TrailingAnnotations)
    Stream.push_back(A);
  return Stream;
}

Expected<CodegenResult>
core::generateFpqaProgram(const sat::CnfFormula &Formula,
                          const ClauseColoring &Coloring,
                          const fpqa::HardwareParams &Hw,
                          const CodegenOptions &Options) {
  pipeline::CompilationContext Ctx;
  Ctx.Formula = &Formula;
  Ctx.Hw = Hw;
  Ctx.Options = Options;
  Ctx.Coloring = Coloring;
  Ctx.HasColoring = true;
  if (Status S = pipeline::PassManager::codegenPipeline().run(Ctx))
    return Expected<CodegenResult>(S);
  CodegenResult Result;
  Result.Program = std::move(Ctx.Program);
  return Result;
}
