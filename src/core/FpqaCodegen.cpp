//===- core/FpqaCodegen.cpp - Pulse-level FPQA code generation -----------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Raman pulse convention: @raman (x, y, z) applies RZ(z) * RY(y) * RX(x)
/// (RX first). The gates the generator needs map to:
///   X       -> (pi, 0, 0)
///   H       -> (0, -pi/2, pi)          (H = RZ(pi) * RY(-pi/2))
///   RX(t)   -> (t, 0, 0)
///   RZ(t)   -> (0, 0, t)
/// all up to global phase.
///
//===----------------------------------------------------------------------===//

#include "core/FpqaCodegen.h"

#include "fpqa/Device.h"

#include <algorithm>
#include <cmath>

using namespace weaver;
using namespace weaver::core;
using circuit::Gate;
using circuit::GateKind;
using fpqa::FpqaDevice;
using qasm::Annotation;
using sat::Clause;
using sat::CnfFormula;
using sat::Literal;

namespace {

constexpr double Pi = 3.14159265358979323846;

/// Per-clause placement plan within a colour.
struct ClausePlan {
  size_t ClauseIndex = 0;
  int Width = 0;          ///< number of literals (1..3)
  int Site = 0;           ///< site index within the colour
  double SiteX = 0;       ///< site centre x
  // Sorted participating qubits. Width==3: Left/Target/Right;
  // Width==2: Left/Right; Width==1: Target only (stays home).
  int Left = -1, Target = -1, Right = -1;
  int ColLeft = -1, ColTarget = -1, ColRight = -1;
  int TargetTrap = -1;    ///< SLM trap index for the target (Width==3)
};

/// One AOD slot: a (qubit, column, resting x) triple for a colour.
struct Slot {
  int Qubit = -1;
  int Column = -1;
  double RestX = 0; ///< x while the colour's triangles are formed
};

struct ColorPlan {
  std::vector<ClausePlan> Clauses;
  std::vector<Slot> Slots; ///< sorted by RestX ascending
};

class Generator {
public:
  Generator(const CnfFormula &Formula, const ClauseColoring &Coloring,
            const fpqa::HardwareParams &Hw, const CodegenOptions &Options)
      : Formula(Formula), Coloring(Coloring), Options(Options), Device(Hw) {}

  Expected<CodegenResult> run();

private:
  // --- Emission primitives ---------------------------------------------
  Status pulse(Annotation A);
  void stmt(const Gate &G);
  /// Emits a local Raman pulse plus the matching logical 1-qubit gate.
  Status ramanGate(int Qubit, GateKind Kind, double Angle = 0);
  /// Emits a global Raman pulse plus one logical gate per qubit.
  Status globalRaman(GateKind Kind, double Angle = 0);

  // --- Movement ----------------------------------------------------------
  Status moveColumnTo(int Column, double X);
  Status shuttleRowTo(double Y);
  Status transferHome(int Qubit, int Column);
  Status transferSite(const ClausePlan &CP);

  // --- Planning ----------------------------------------------------------
  Status plan();
  Status emitSetup();
  Status emitColor(int Color);
  /// Order-preserving parallel load/unload rounds over (qubit, column)
  /// pairs sorted by column (Algorithm 2).
  Status emitHomeRounds(std::vector<Slot> Atoms);
  /// Colour boundary: unload row atoms the colour does not use, keep the
  /// reusable ones on their columns, load the rest, then place all slots.
  Status emitColorBoundary(ColorPlan &Plan);
  Status emitUnloadAll();
  Status emitCompressedGates(const ColorPlan &Plan, int Color);
  Status emitLadderGates(const ColorPlan &Plan, int Color);
  Status emitPolarityConjugation(const ColorPlan &Plan);
  Status emitPairPhase(const ColorPlan &Plan);
  Status emitRzzLadderStep(const ColorPlan &Plan,
                           const std::vector<std::pair<int, int>> &Pairs,
                           const std::vector<double> &Thetas);
  Status emitCxStep(const std::vector<std::pair<int, int>> &Pairs);

  const Clause &clauseOf(const ClausePlan &CP) const {
    return Formula.clause(CP.ClauseIndex);
  }

  const CnfFormula &Formula;
  const ClauseColoring &Coloring;
  CodegenOptions Options;
  FpqaDevice Device;

  std::vector<ColorPlan> Plans;
  std::vector<Vec2> SlmTraps;      ///< homes first, then zone target traps
  std::map<std::pair<int, int>, int> ZoneSiteTrap; ///< (zone, site) -> trap
  std::vector<int> AtomColumn;     ///< qubit -> column on the row, or -1
  std::vector<int> ColumnAtom;     ///< column -> qubit riding it, or -1
  int NumColumns = 0;
  std::vector<double> ColX;        ///< column position mirror
  double RowYPos = 0;

  qasm::WqasmProgram Program;
  std::vector<Annotation> Pending; ///< annotations awaiting next statement
};

Status Generator::pulse(Annotation A) {
  if (Status S = Device.apply(A))
    return Status::error("codegen produced an invalid instruction: " +
                         S.message());
  Pending.push_back(std::move(A));
  return Status::success();
}

void Generator::stmt(const Gate &G) {
  Program.Statements.push_back(qasm::GateStatement{G, std::move(Pending)});
  Pending.clear();
}

Status Generator::ramanGate(int Qubit, GateKind Kind, double Angle) {
  double X = 0, Y = 0, Z = 0;
  Gate G;
  switch (Kind) {
  case GateKind::X:
    X = Pi;
    G = Gate(GateKind::X, {Qubit});
    break;
  case GateKind::H:
    Y = -Pi / 2;
    Z = Pi;
    G = Gate(GateKind::H, {Qubit});
    break;
  case GateKind::RX:
    X = Angle;
    G = Gate(GateKind::RX, {Qubit}, {Angle});
    break;
  case GateKind::RZ:
    Z = Angle;
    G = Gate(GateKind::RZ, {Qubit}, {Angle});
    break;
  default:
    assert(false && "unsupported Raman gate kind");
  }
  if (Status S = pulse(Annotation::ramanLocal(Qubit, X, Y, Z)))
    return S;
  stmt(G);
  return Status::success();
}

Status Generator::globalRaman(GateKind Kind, double Angle) {
  double X = 0, Y = 0, Z = 0;
  switch (Kind) {
  case GateKind::H:
    Y = -Pi / 2;
    Z = Pi;
    break;
  case GateKind::RX:
    X = Angle;
    break;
  case GateKind::RZ:
    Z = Angle;
    break;
  default:
    assert(false && "unsupported global Raman gate kind");
  }
  if (Status S = pulse(Annotation::ramanGlobal(X, Y, Z)))
    return S;
  for (int Q = 0; Q < Formula.numVariables(); ++Q) {
    Gate G = Kind == GateKind::H
                 ? Gate(GateKind::H, {Q})
                 : Gate(Kind, {Q}, {Angle});
    stmt(G);
  }
  return Status::success();
}

Status Generator::moveColumnTo(int Column, double X) {
  assert(Column >= 0 && Column < NumColumns && "column index out of range");
  double Gap = Options.Geometry.BumpGap;
  if (std::abs(ColX[Column] - X) < 1e-9)
    return Status::success();
  // The epsilon keeps exactly-Gap-spaced park targets from triggering
  // spurious displacement of an already-placed neighbour.
  if (X > ColX[Column]) {
    if (Column + 1 < NumColumns && ColX[Column + 1] < X + Gap - 1e-7)
      if (Status S = moveColumnTo(Column + 1, X + Gap))
        return S;
  } else {
    if (Column > 0 && ColX[Column - 1] > X - Gap + 1e-7)
      if (Status S = moveColumnTo(Column - 1, X - Gap))
        return S;
  }
  if (Status S =
          pulse(Annotation::shuttle(/*Row=*/false, Column, X - ColX[Column])))
    return S;
  ColX[Column] = X;
  return Status::success();
}

Status Generator::shuttleRowTo(double Y) {
  if (std::abs(RowYPos - Y) < 1e-9)
    return Status::success();
  if (Status S = pulse(Annotation::shuttle(/*Row=*/true, 0, Y - RowYPos)))
    return S;
  RowYPos = Y;
  return Status::success();
}

Status Generator::transferHome(int Qubit, int Column) {
  // Home trap index equals the qubit id by construction; the transfer
  // direction is implied by which trap is occupied.
  return pulse(Annotation::transfer(Qubit, Column, 0));
}

Status Generator::transferSite(const ClausePlan &CP) {
  return pulse(Annotation::transfer(CP.TargetTrap, CP.ColTarget, 0));
}

Status Generator::plan() {
  const Layout &L = Options.Geometry;
  int NumQubits = Formula.numVariables();

  // Home traps: one per variable, index == qubit id.
  for (int Q = 0; Q < NumQubits; ++Q)
    SlmTraps.push_back(L.homePosition(Q));

  Plans.resize(Coloring.numColors());
  size_t MaxSlots = 0;
  for (int Color = 0; Color < Coloring.numColors(); ++Color) {
    ColorPlan &Plan = Plans[Color];
    // Deterministic site order: ascending smallest qubit.
    std::vector<size_t> ClauseIdxs = Coloring.ClausesByColor[Color];
    std::sort(ClauseIdxs.begin(), ClauseIdxs.end(), [&](size_t A, size_t B) {
      int MinA = Formula.clause(A)[0].variable(),
          MinB = Formula.clause(B)[0].variable();
      for (Literal Lit : Formula.clause(A))
        MinA = std::min(MinA, Lit.variable());
      for (Literal Lit : Formula.clause(B))
        MinB = std::min(MinB, Lit.variable());
      return MinA != MinB ? MinA < MinB : A < B;
    });
    int Site = 0;
    for (size_t CI : ClauseIdxs) {
      const Clause &C = Formula.clause(CI);
      if (C.size() > 3)
        return Status::error("clause " + std::to_string(CI) +
                             " has more than three literals");
      ClausePlan CP;
      CP.ClauseIndex = CI;
      CP.Width = static_cast<int>(C.size());
      std::vector<int> Qs;
      for (Literal Lit : C)
        Qs.push_back(Lit.variable() - 1);
      std::sort(Qs.begin(), Qs.end());
      if (CP.Width == 1) {
        CP.Target = Qs[0]; // executes at home, no site
        Plan.Clauses.push_back(CP);
        continue;
      }
      CP.Site = Site++;
      CP.SiteX = L.sitePosition(Color, CP.Site).X;
      if (CP.Width == 2) {
        CP.Left = Qs[0];
        CP.Right = Qs[1];
      } else {
        CP.Left = Qs[0];
        CP.Target = Qs[1];
        CP.Right = Qs[2];
        // Zone traps are shared by every colour cycled onto the same zone.
        auto Key = std::make_pair(L.zoneOf(Color), CP.Site);
        auto It = ZoneSiteTrap.find(Key);
        if (It == ZoneSiteTrap.end()) {
          It = ZoneSiteTrap.emplace(Key, static_cast<int>(SlmTraps.size()))
                   .first;
          SlmTraps.push_back(L.sitePosition(Color, CP.Site));
        }
        CP.TargetTrap = It->second;
      }
      Plan.Clauses.push_back(CP);
    }
    // Build the slot list (sorted by resting x since sites ascend).
    for (ClausePlan &CP : Plan.Clauses) {
      if (CP.Width == 2) {
        Plan.Slots.push_back({CP.Left, -1, CP.SiteX - 2 * L.TriangleHalfWidth});
        Plan.Slots.push_back(
            {CP.Right, -1, CP.SiteX + 2 * L.TriangleHalfWidth});
      } else if (CP.Width == 3) {
        Plan.Slots.push_back({CP.Left, -1, CP.SiteX - L.TriangleHalfWidth});
        Plan.Slots.push_back({CP.Target, -1, CP.SiteX});
        Plan.Slots.push_back({CP.Right, -1, CP.SiteX + L.TriangleHalfWidth});
      }
    }
    MaxSlots = std::max(MaxSlots, Plan.Slots.size());
  }
  NumColumns = static_cast<int>(MaxSlots);
  // Columns are assigned per colour at emission time (emitColorBoundary):
  // with atom reuse enabled the assignment depends on which atoms the
  // previous colour left on the row.
  return Status::success();
}

Status Generator::emitSetup() {
  const Layout &L = Options.Geometry;
  if (Status S = pulse(Annotation::slm(SlmTraps)))
    return S;
  if (NumColumns > 0) {
    std::vector<double> Xs;
    for (int C = 0; C < NumColumns; ++C)
      Xs.push_back(-L.ParkSpacing * (NumColumns - C));
    ColX = Xs;
    RowYPos = L.PickupRowY;
    if (Status S = pulse(Annotation::aod(Xs, {RowYPos})))
      return S;
  }
  for (int Q = 0; Q < Formula.numVariables(); ++Q)
    if (Status S = pulse(Annotation::bindSlm(Q, Q)))
      return S;
  AtomColumn.assign(Formula.numVariables(), -1);
  ColumnAtom.assign(NumColumns, -1);
  return Status::success();
}

/// Partitions \p Atoms into order-preserving rounds and, per round, aligns
/// each column with its atom's home trap and fires one parallel transfer
/// batch. This is Algorithm 2 (§5.3): atoms whose order along the AOD row
/// matches their order at the destination shuttle together; the rest wait
/// for a later round. Works symmetrically for loading (homes -> row) and
/// unloading (row -> homes); the transfer direction follows occupancy.
/// Updates the AtomColumn/ColumnAtom bookkeeping.
Status Generator::emitHomeRounds(std::vector<Slot> Atoms) {
  const Layout &L = Options.Geometry;
  std::sort(Atoms.begin(), Atoms.end(),
            [](const Slot &A, const Slot &B) { return A.Column < B.Column; });
  std::vector<Slot> Remaining = std::move(Atoms);
  while (!Remaining.empty()) {
    // Greedy maximal subsequence whose home x increases with column index.
    std::vector<Slot> Round;
    std::vector<Slot> Deferred;
    double LastHomeX = -1e300;
    for (const Slot &S : Remaining) {
      double HomeX = L.homePosition(S.Qubit).X;
      if (HomeX > LastHomeX) {
        Round.push_back(S);
        LastHomeX = HomeX;
      } else {
        Deferred.push_back(S);
      }
    }
    // One parallel shuttle batch: every column of the round moves to its
    // atom's home column position.
    for (const Slot &S : Round)
      if (Status St = moveColumnTo(S.Column, L.homePosition(S.Qubit).X))
        return St;
    // A bump cascade from a later move can displace an earlier round
    // column. If everyone is in place, fire one parallel transfer batch;
    // otherwise fall back to interleaved move+transfer (still correct,
    // just without transfer batching for this round).
    bool AllAligned = true;
    for (const Slot &S : Round)
      AllAligned &=
          std::abs(ColX[S.Column] - L.homePosition(S.Qubit).X) < 1e-9;
    for (const Slot &S : Round) {
      if (!AllAligned)
        if (Status St = moveColumnTo(S.Column, L.homePosition(S.Qubit).X))
          return St;
      if (Status St = transferHome(S.Qubit, S.Column))
        return St;
      if (AtomColumn[S.Qubit] == -1) { // loaded onto the row
        AtomColumn[S.Qubit] = S.Column;
        ColumnAtom[S.Column] = S.Qubit;
      } else { // dropped into its home trap
        ColumnAtom[AtomColumn[S.Qubit]] = -1;
        AtomColumn[S.Qubit] = -1;
      }
    }
    Remaining = std::move(Deferred);
  }
  return Status::success();
}

Status Generator::emitUnloadAll() {
  std::vector<Slot> OnRow;
  for (int C = 0; C < NumColumns; ++C)
    if (ColumnAtom[C] != -1)
      OnRow.push_back({ColumnAtom[C], C, 0});
  if (OnRow.empty())
    return Status::success();
  if (Status S = shuttleRowTo(Options.Geometry.PickupRowY))
    return S;
  return emitHomeRounds(std::move(OnRow));
}

Status Generator::emitColorBoundary(ColorPlan &Plan) {
  if (Plan.Slots.empty())
    return Status::success();
  const Layout &L = Options.Geometry;
  double Gap = L.BumpGap;
  int NumSlots = static_cast<int>(Plan.Slots.size());

  // Idle (atom-free) columns caught between two slot columns must park in
  // the physical gap between the slots' resting positions. Capacity[i] is
  // how many parked columns fit between slot i and slot i+1 (zero inside a
  // clause triangle, ~19 between sites).
  std::vector<int> Capacity(NumSlots, 0);
  for (int I = 0; I + 1 < NumSlots; ++I)
    Capacity[I] = std::max(
        0, static_cast<int>((Plan.Slots[I + 1].RestX - Plan.Slots[I].RestX) /
                            Gap) -
               1);

  // Select reusable atoms (Algorithm 2's order-preservation condition,
  // adapted to fixed column indices): a row atom keeps its column when
  // (a) the columns left/right of it suffice for the earlier/later slots,
  // and (b) the idle columns trapped between it and the previously kept
  // column fit into the physical slot gaps in between.
  std::vector<int> SlotColumn(NumSlots, -1);
  std::vector<bool> ColumnKept(NumColumns, false);
  if (Options.ReuseAodAtoms) {
    int LastCol = -1, LastSlot = -1;
    for (int I = 0; I < NumSlots; ++I) {
      int Q = Plan.Slots[I].Qubit;
      int C = AtomColumn[Q];
      if (C < 0)
        continue;
      if (C < LastCol + (I - LastSlot) || C > NumColumns - (NumSlots - I))
        continue;
      if (LastSlot >= 0) {
        int Idle = (C - LastCol - 1) - (I - LastSlot - 1);
        int Room = 0;
        for (int T = LastSlot; T < I; ++T)
          Room += Capacity[T];
        if (Idle > Room)
          continue;
      }
      SlotColumn[I] = C;
      ColumnKept[C] = true;
      LastCol = C;
      LastSlot = I;
    }
  }

  // Unload every row atom that is not kept.
  std::vector<Slot> ToUnload;
  for (int C = 0; C < NumColumns; ++C)
    if (ColumnAtom[C] != -1 && !ColumnKept[C])
      ToUnload.push_back({ColumnAtom[C], C, 0});
  bool NeedLoading = false;
  for (int I = 0; I < NumSlots; ++I)
    NeedLoading |= SlotColumn[I] == -1;
  if (!ToUnload.empty() || NeedLoading)
    if (Status S = shuttleRowTo(L.PickupRowY))
      return S;
  if (Status S = emitHomeRounds(std::move(ToUnload)))
    return S;

  // Assign columns to the runs of unassigned slots.
  //  * A run that ends at a kept column distributes the idle columns the
  //    kept atom traps (quota-checked above) greedily into the earliest
  //    slot gaps, placing the new slots on the indices in between.
  //  * The head run (no kept column before it) right-aligns against the
  //    first kept column so all idle columns park on the unbounded left.
  //  * The tail run (no kept column after it) takes indices immediately
  //    after the last kept column so idles park on the unbounded right.
  std::vector<Slot> ToLoad;
  for (int I = 0; I < NumSlots;) {
    if (SlotColumn[I] != -1) {
      ++I;
      continue;
    }
    int RunEnd = I; // one past the run of unassigned slots
    while (RunEnd < NumSlots && SlotColumn[RunEnd] == -1)
      ++RunEnd;
    int LastCol = I == 0 ? -1 : SlotColumn[I - 1];
    int LastSlot = I - 1;
    if (RunEnd == NumSlots) {
      // Tail (or no kept at all): consecutive indices after LastCol.
      for (int T = I; T < RunEnd; ++T)
        SlotColumn[T] = ++LastCol;
    } else if (I == 0) {
      // Head run: right-align against the first kept column.
      int KeptCol = SlotColumn[RunEnd];
      for (int T = RunEnd - 1, C = KeptCol - 1; T >= 0; --T, --C)
        SlotColumn[T] = C;
    } else {
      // Interior run bounded by kept columns on both sides: spread the
      // trapped idle columns into the gaps greedily, earliest first.
      int KeptCol = SlotColumn[RunEnd];
      int RunLen = RunEnd - I;
      int Idle = (KeptCol - LastCol - 1) - RunLen;
      int Cursor = LastCol;
      for (int T = I; T < RunEnd; ++T) {
        int G = std::min(Idle, Capacity[T - 1]);
        Cursor += G;
        Idle -= G;
        SlotColumn[T] = ++Cursor;
      }
      assert(Idle <= Capacity[RunEnd - 1] &&
             "interior idle columns exceed the final gap capacity");
      (void)LastSlot;
    }
    for (int T = I; T < RunEnd; ++T) {
      assert(SlotColumn[T] >= 0 && SlotColumn[T] < NumColumns &&
             !ColumnKept[SlotColumn[T]] && "column assignment out of range");
      ToLoad.push_back(
          {Plan.Slots[T].Qubit, SlotColumn[T], Plan.Slots[T].RestX});
    }
    I = RunEnd;
  }
  if (Status S = emitHomeRounds(std::move(ToLoad)))
    return S;

  // Record the assignment on the plan.
  for (int I = 0; I < NumSlots; ++I)
    Plan.Slots[I].Column = SlotColumn[I];
  for (ClausePlan &CP : Plan.Clauses)
    for (const Slot &S : Plan.Slots) {
      if (S.Qubit == CP.Left)
        CP.ColLeft = S.Column;
      if (S.Qubit == CP.Target)
        CP.ColTarget = S.Column;
      if (S.Qubit == CP.Right)
        CP.ColRight = S.Column;
    }

  // Compute an explicit target for EVERY column: slot columns rest at
  // their slot x; idle columns park left of the first slot, in the gaps
  // between slots, or right of the last slot. Targets ascend with index
  // and keep >= Gap spacing, so the placement sweep below cannot trigger
  // displacement cascades.
  std::vector<double> Target(NumColumns);
  int FirstSlotCol = SlotColumn[0], LastSlotCol = SlotColumn[NumSlots - 1];
  for (int C = FirstSlotCol - 1, K = 1; C >= 0; --C, ++K)
    Target[C] = Plan.Slots[0].RestX - Gap * K;
  for (int C = LastSlotCol + 1, K = 1; C < NumColumns; ++C, ++K)
    Target[C] = Plan.Slots[NumSlots - 1].RestX + Gap * K;
  {
    int SlotIdx = 0;
    double ParkBase = 0;
    int ParkRank = 0;
    for (int C = FirstSlotCol; C <= LastSlotCol; ++C) {
      if (SlotIdx < NumSlots && SlotColumn[SlotIdx] == C) {
        Target[C] = Plan.Slots[SlotIdx].RestX;
        ParkBase = Plan.Slots[SlotIdx].RestX;
        ParkRank = 0;
        ++SlotIdx;
        continue;
      }
      Target[C] = ParkBase + Gap * ++ParkRank;
    }
  }
  // Single increasing sweep; a verification pass guards the invariant.
  for (int Sweep = 0; Sweep < 3; ++Sweep) {
    bool AllPlaced = true;
    for (int C = 0; C < NumColumns; ++C) {
      if (Status St = moveColumnTo(C, Target[C]))
        return St;
      AllPlaced &= std::abs(ColX[C] - Target[C]) < 1e-9;
    }
    if (AllPlaced)
      return Status::success();
  }
  return Status::error("column placement failed to converge");
}

Status Generator::emitPolarityConjugation(const ColorPlan &Plan) {
  for (const ClausePlan &CP : Plan.Clauses)
    for (Literal Lit : clauseOf(CP))
      if (!Lit.isNegated())
        if (Status S = ramanGate(Lit.variable() - 1, GateKind::X))
          return S;
  return Status::success();
}

/// Emits one RZZ ladder step shared by every listed pair: H on the second
/// qubit, a global Rydberg CZ pulse, H-RZ-H, a second CZ pulse, H. All
/// pairs must already be the only atom groups inside the blockade radius.
Status Generator::emitRzzLadderStep(
    const ColorPlan &, const std::vector<std::pair<int, int>> &Pairs,
    const std::vector<double> &Thetas) {
  assert(Pairs.size() == Thetas.size() && "one angle per pair");
  if (Pairs.empty())
    return Status::success();
  for (const auto &[A, B] : Pairs) {
    (void)A;
    if (Status S = ramanGate(B, GateKind::H))
      return S;
  }
  if (Status S = pulse(Annotation::rydberg()))
    return S;
  for (const auto &[A, B] : Pairs)
    stmt(Gate(GateKind::CZ, {A, B}));
  for (size_t I = 0; I < Pairs.size(); ++I) {
    int B = Pairs[I].second;
    if (Status S = ramanGate(B, GateKind::H))
      return S;
    if (Status S = ramanGate(B, GateKind::RZ, Thetas[I]))
      return S;
    if (Status S = ramanGate(B, GateKind::H))
      return S;
  }
  if (Status S = pulse(Annotation::rydberg()))
    return S;
  for (const auto &[A, B] : Pairs)
    stmt(Gate(GateKind::CZ, {A, B}));
  for (const auto &[A, B] : Pairs) {
    (void)A;
    if (Status S = ramanGate(B, GateKind::H))
      return S;
  }
  return Status::success();
}

/// Emits one CX layer shared by every listed (control, target) pair:
/// H(target), global Rydberg CZ, H(target).
Status Generator::emitCxStep(const std::vector<std::pair<int, int>> &Pairs) {
  if (Pairs.empty())
    return Status::success();
  for (const auto &[C, T] : Pairs) {
    (void)C;
    if (Status S = ramanGate(T, GateKind::H))
      return S;
  }
  if (Status S = pulse(Annotation::rydberg()))
    return S;
  for (const auto &[C, T] : Pairs)
    stmt(Gate(GateKind::CZ, {C, T}));
  for (const auto &[C, T] : Pairs) {
    (void)C;
    if (Status S = ramanGate(T, GateKind::H))
      return S;
  }
  return Status::success();
}

/// Shared pair phase: with the row lifted clear of the targets, every
/// 3-literal clause runs its control-pair RZZ ladder and every 2-literal
/// clause runs its whole pair ladder; all CZs ride the same two global
/// Rydberg pulses. Leaves the row lifted.
Status Generator::emitPairPhase(const ColorPlan &Plan) {
  const Layout &L = Options.Geometry;
  double Gamma = Options.Qaoa.Gamma;
  std::vector<std::pair<int, int>> Pairs;
  std::vector<double> Thetas;
  for (const ClausePlan &CP : Plan.Clauses) {
    if (CP.Width < 2)
      continue;
    Pairs.push_back({CP.Left, CP.Right});
    Thetas.push_back(CP.Width == 3 ? Gamma / 4 : Gamma / 2);
  }
  if (Pairs.empty())
    return Status::success();

  // Bring 2-literal pairs together; lift the row away from the targets.
  for (const ClausePlan &CP : Plan.Clauses)
    if (CP.Width == 2)
      if (Status S = moveColumnTo(CP.ColLeft, CP.SiteX))
        return S;
  if (Status S = shuttleRowTo(RowYPos + L.CzLift))
    return S;

  if (Status S = emitRzzLadderStep(Plan, Pairs, Thetas))
    return S;

  // Separate the 2-literal pairs again.
  for (const ClausePlan &CP : Plan.Clauses)
    if (CP.Width == 2)
      if (Status S =
              moveColumnTo(CP.ColLeft, CP.SiteX - 2 * L.TriangleHalfWidth))
        return S;
  return Status::success();
}

Status Generator::emitCompressedGates(const ColorPlan &Plan, int Color) {
  const Layout &L = Options.Geometry;
  double Gamma = Options.Qaoa.Gamma;

  if (Status S = emitPolarityConjugation(Plan))
    return S;

  bool AnyTriple = false;
  for (const ClausePlan &CP : Plan.Clauses)
    AnyTriple |= CP.Width == 3;

  if (AnyTriple) {
    if (Status S = shuttleRowTo(L.gateRowY(Color)))
      return S;
    // Drop targets into their zone SLM traps, forming the triangles.
    for (const ClausePlan &CP : Plan.Clauses)
      if (CP.Width == 3)
        if (Status S = transferSite(CP))
          return S;
    // H(target), then the CCZ sandwich with RX(g/2) in the middle.
    for (const ClausePlan &CP : Plan.Clauses)
      if (CP.Width == 3)
        if (Status S = ramanGate(CP.Target, GateKind::H))
          return S;
    if (Status S = pulse(Annotation::rydberg()))
      return S;
    for (const ClausePlan &CP : Plan.Clauses)
      if (CP.Width == 3)
        stmt(Gate(GateKind::CCZ, {CP.Left, CP.Target, CP.Right}));
    for (const ClausePlan &CP : Plan.Clauses)
      if (CP.Width == 3)
        if (Status S = ramanGate(CP.Target, GateKind::RX, Gamma / 2))
          return S;
    if (Status S = pulse(Annotation::rydberg()))
      return S;
    for (const ClausePlan &CP : Plan.Clauses)
      if (CP.Width == 3)
        stmt(Gate(GateKind::CCZ, {CP.Left, CP.Target, CP.Right}));
    for (const ClausePlan &CP : Plan.Clauses)
      if (CP.Width == 3)
        if (Status S = ramanGate(CP.Target, GateKind::H))
          return S;
  }

  // Control-pair ladders (and complete 2-literal clauses) with the row
  // lifted so targets stay out of the blockade radius.
  if (Status S = emitPairPhase(Plan))
    return S;

  // Single-qubit residues.
  for (const ClausePlan &CP : Plan.Clauses) {
    switch (CP.Width) {
    case 1:
      if (Status S = ramanGate(CP.Target, GateKind::RZ, -Gamma))
        return S;
      break;
    case 2:
      if (Status S = ramanGate(CP.Left, GateKind::RZ, -Gamma / 2))
        return S;
      if (Status S = ramanGate(CP.Right, GateKind::RZ, -Gamma / 2))
        return S;
      break;
    case 3:
      if (Status S = ramanGate(CP.Left, GateKind::RZ, -Gamma / 4))
        return S;
      if (Status S = ramanGate(CP.Right, GateKind::RZ, -Gamma / 4))
        return S;
      if (Status S = ramanGate(CP.Target, GateKind::RZ, -Gamma / 2))
        return S;
      break;
    }
  }

  // Retrieve targets back onto the row.
  if (AnyTriple) {
    if (Status S = shuttleRowTo(L.gateRowY(Color)))
      return S;
    for (const ClausePlan &CP : Plan.Clauses)
      if (CP.Width == 3)
        if (Status S = transferSite(CP))
          return S;
  }

  return emitPolarityConjugation(Plan);
}

/// Uncompressed lowering (§5.4 fallback / ablation): each 3-literal clause
/// is a pure CZ-ladder network. The three ZZ pair terms execute in the
/// configurations LT (right control shifted away), RT (left control
/// shifted away) and LR (row lifted); the cubic term is a CX ladder across
/// configurations LT-RT-LT.
Status Generator::emitLadderGates(const ColorPlan &Plan, int Color) {
  const Layout &L = Options.Geometry;
  double Gamma = Options.Qaoa.Gamma;

  if (Status S = emitPolarityConjugation(Plan))
    return S;

  std::vector<const ClausePlan *> Triples;
  for (const ClausePlan &CP : Plan.Clauses)
    if (CP.Width == 3)
      Triples.push_back(&CP);

  auto ShiftRight = [&](bool Away) {
    for (const ClausePlan *CP : Triples)
      if (Status S = moveColumnTo(
              CP->ColRight, CP->SiteX + L.TriangleHalfWidth +
                                (Away ? L.PairShift : 0.0)))
        return S;
    return Status::success();
  };
  auto ShiftLeft = [&](bool Away) {
    for (const ClausePlan *CP : Triples)
      if (Status S = moveColumnTo(
              CP->ColLeft, CP->SiteX - L.TriangleHalfWidth -
                               (Away ? L.PairShift : 0.0)))
        return S;
    return Status::success();
  };

  if (!Triples.empty()) {
    if (Status S = shuttleRowTo(L.gateRowY(Color)))
      return S;
    for (const ClausePlan *CP : Triples)
      if (Status S = transferSite(*CP))
        return S;

    std::vector<std::pair<int, int>> Pairs;
    std::vector<double> Thetas;

    // Config LT: (Left, Target) pairs interact; Right shifted away.
    if (Status S = ShiftRight(/*Away=*/true))
      return S;
    Pairs.clear();
    Thetas.clear();
    for (const ClausePlan *CP : Triples) {
      Pairs.push_back({CP->Left, CP->Target});
      Thetas.push_back(Gamma / 4);
    }
    if (Status S = emitRzzLadderStep(Plan, Pairs, Thetas))
      return S;

    // Config RT: (Target, Right) pairs; Left shifted away.
    if (Status S = ShiftRight(/*Away=*/false))
      return S;
    if (Status S = ShiftLeft(/*Away=*/true))
      return S;
    Pairs.clear();
    Thetas.clear();
    for (const ClausePlan *CP : Triples) {
      Pairs.push_back({CP->Target, CP->Right});
      Thetas.push_back(Gamma / 4);
    }
    if (Status S = emitRzzLadderStep(Plan, Pairs, Thetas))
      return S;
    if (Status S = ShiftLeft(/*Away=*/false))
      return S;
  }

  // Config LR via the shared pair phase (also completes 2-literal
  // clauses); leaves the row lifted, so bring it back for the cubic part.
  if (Status S = emitPairPhase(Plan))
    return S;

  if (!Triples.empty()) {
    if (Status S = shuttleRowTo(L.gateRowY(Color)))
      return S;

    // Cubic CX ladder: CX(L,T) CX(T,R) RZ(R) CX(T,R) CX(L,T).
    std::vector<std::pair<int, int>> CxLT, CxTR;
    for (const ClausePlan *CP : Triples) {
      CxLT.push_back({CP->Left, CP->Target});
      CxTR.push_back({CP->Target, CP->Right});
    }
    if (Status S = ShiftRight(/*Away=*/true))
      return S;
    if (Status S = emitCxStep(CxLT))
      return S;
    if (Status S = ShiftRight(/*Away=*/false))
      return S;
    if (Status S = ShiftLeft(/*Away=*/true))
      return S;
    if (Status S = emitCxStep(CxTR))
      return S;
    for (const ClausePlan *CP : Triples)
      if (Status S = ramanGate(CP->Right, GateKind::RZ, -Gamma / 4))
        return S;
    if (Status S = emitCxStep(CxTR))
      return S;
    if (Status S = ShiftLeft(/*Away=*/false))
      return S;
    if (Status S = ShiftRight(/*Away=*/true))
      return S;
    if (Status S = emitCxStep(CxLT))
      return S;
    if (Status S = ShiftRight(/*Away=*/false))
      return S;
  }

  // Single-qubit terms: ladder form uses -g/4 on all three qubits.
  for (const ClausePlan &CP : Plan.Clauses) {
    switch (CP.Width) {
    case 1:
      if (Status S = ramanGate(CP.Target, GateKind::RZ, -Gamma))
        return S;
      break;
    case 2:
      if (Status S = ramanGate(CP.Left, GateKind::RZ, -Gamma / 2))
        return S;
      if (Status S = ramanGate(CP.Right, GateKind::RZ, -Gamma / 2))
        return S;
      break;
    case 3:
      if (Status S = ramanGate(CP.Left, GateKind::RZ, -Gamma / 4))
        return S;
      if (Status S = ramanGate(CP.Target, GateKind::RZ, -Gamma / 4))
        return S;
      if (Status S = ramanGate(CP.Right, GateKind::RZ, -Gamma / 4))
        return S;
      break;
    }
  }

  // Retrieve targets back onto the row.
  if (!Triples.empty()) {
    if (Status S = shuttleRowTo(L.gateRowY(Color)))
      return S;
    for (const ClausePlan *CP : Triples)
      if (Status S = transferSite(*CP))
        return S;
  }

  return emitPolarityConjugation(Plan);
}

Status Generator::emitColor(int Color) {
  ColorPlan &Plan = Plans[Color];
  if (Status S = emitColorBoundary(Plan))
    return S;
  if (Options.UseCompression)
    return emitCompressedGates(Plan, Color);
  return emitLadderGates(Plan, Color);
}

Expected<CodegenResult> Generator::run() {
  if (Status S = plan())
    return Expected<CodegenResult>(S);
  Program.NumQubits = Formula.numVariables();
  Program.NumBits = Options.Measure ? Formula.numVariables() : 0;
  if (Status S = emitSetup())
    return Expected<CodegenResult>(S);
  if (Status S = globalRaman(GateKind::H))
    return Expected<CodegenResult>(S);
  for (int Layer = 0; Layer < Options.Qaoa.Layers; ++Layer) {
    for (int Color = 0; Color < Coloring.numColors(); ++Color)
      if (Status S = emitColor(Color))
        return Expected<CodegenResult>(S);
    if (Status S = globalRaman(GateKind::RX, 2 * Options.Qaoa.Beta))
      return Expected<CodegenResult>(S);
  }
  // Park every atom back in its home trap so the program ends in the same
  // configuration it started from (and measurement happens in the SLM).
  if (Status S = emitUnloadAll())
    return Expected<CodegenResult>(S);
  if (Options.Measure)
    for (int Q = 0; Q < Formula.numVariables(); ++Q)
      stmt(Gate(GateKind::Measure, {Q}));
  Program.TrailingAnnotations = std::move(Pending);
  CodegenResult Result;
  Result.Program = std::move(Program);
  return Result;
}

} // namespace

std::vector<Annotation> CodegenResult::pulseStream() const {
  std::vector<Annotation> Stream;
  for (const qasm::GateStatement &S : Program.Statements)
    for (const Annotation &A : S.Annotations)
      Stream.push_back(A);
  for (const Annotation &A : Program.TrailingAnnotations)
    Stream.push_back(A);
  return Stream;
}

Expected<CodegenResult>
core::generateFpqaProgram(const CnfFormula &Formula,
                          const ClauseColoring &Coloring,
                          const fpqa::HardwareParams &Hw,
                          const CodegenOptions &Options) {
  Generator G(Formula, Coloring, Hw, Options);
  return G.run();
}
