//===- core/BatchCompiler.cpp - Multi-threaded batch compilation ----------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/BatchCompiler.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

using namespace weaver;
using namespace weaver::core;

BatchCompiler::BatchCompiler(const baselines::Backend &BackendImpl,
                             BatchOptions Options)
    : BackendImpl(BackendImpl), Options(Options) {}

int BatchCompiler::effectiveThreads(size_t BatchSize) const {
  int Threads = Options.Pool
                    ? Options.Pool->numThreads()
                    : (Options.NumThreads > 0
                           ? Options.NumThreads
                           : static_cast<int>(
                                 std::thread::hardware_concurrency()));
  Threads = std::max(1, Threads);
  return static_cast<int>(
      std::min<size_t>(static_cast<size_t>(Threads), BatchSize));
}

std::vector<baselines::BaselineResult> BatchCompiler::compileAll(
    const std::vector<sat::CnfFormula> &Formulas) const {
  std::vector<baselines::BaselineResult> Results(Formulas.size());
  if (Formulas.empty())
    return Results;

  if (Options.Pool) {
    // Shared-pool path: one task per batch slot, completion tracked by a
    // counter + condvar latch. Posting can block on a bounded queue, so
    // tasks already posted make progress while we enqueue the rest.
    std::mutex M;
    std::condition_variable Done;
    size_t Remaining = Formulas.size();
    for (size_t I = 0; I < Formulas.size(); ++I) {
      bool Posted = Options.Pool->post([&, I]() {
        Results[I] = BackendImpl.compile(Formulas[I], Options.Qaoa);
        std::lock_guard<std::mutex> Lock(M);
        if (--Remaining == 0)
          Done.notify_all();
      });
      if (!Posted) {
        // Pool shut down mid-batch: run the remainder inline so every
        // slot still gets a result.
        Results[I] = BackendImpl.compile(Formulas[I], Options.Qaoa);
        std::lock_guard<std::mutex> Lock(M);
        if (--Remaining == 0)
          Done.notify_all();
      }
    }
    std::unique_lock<std::mutex> Lock(M);
    Done.wait(Lock, [&]() { return Remaining == 0; });
    return Results;
  }

  int Threads = effectiveThreads(Formulas.size());
  if (Threads == 1) {
    for (size_t I = 0; I < Formulas.size(); ++I)
      Results[I] = BackendImpl.compile(Formulas[I], Options.Qaoa);
    return Results;
  }

  // Dynamic work stealing over the shared index: instance sizes vary
  // wildly (satlib sweeps mix 20- and 250-variable formulas), so static
  // partitioning would leave workers idle.
  std::atomic<size_t> Next{0};
  auto Worker = [&]() {
    for (size_t I = Next.fetch_add(1); I < Formulas.size();
         I = Next.fetch_add(1))
      Results[I] = BackendImpl.compile(Formulas[I], Options.Qaoa);
  };
  std::vector<std::thread> Pool;
  Pool.reserve(Threads);
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back(Worker);
  for (std::thread &T : Pool)
    T.join();
  return Results;
}
