//===- core/BatchCompiler.cpp - Multi-threaded batch compilation ----------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/BatchCompiler.h"

#include <algorithm>
#include <atomic>
#include <thread>

using namespace weaver;
using namespace weaver::core;

BatchCompiler::BatchCompiler(const baselines::Backend &BackendImpl,
                             BatchOptions Options)
    : BackendImpl(BackendImpl), Options(Options) {}

int BatchCompiler::effectiveThreads(size_t BatchSize) const {
  int Threads = Options.NumThreads > 0
                    ? Options.NumThreads
                    : static_cast<int>(std::thread::hardware_concurrency());
  Threads = std::max(1, Threads);
  return static_cast<int>(
      std::min<size_t>(static_cast<size_t>(Threads), BatchSize));
}

std::vector<baselines::BaselineResult> BatchCompiler::compileAll(
    const std::vector<sat::CnfFormula> &Formulas) const {
  std::vector<baselines::BaselineResult> Results(Formulas.size());
  if (Formulas.empty())
    return Results;

  int Threads = effectiveThreads(Formulas.size());
  if (Threads == 1) {
    for (size_t I = 0; I < Formulas.size(); ++I)
      Results[I] = BackendImpl.compile(Formulas[I], Options.Qaoa);
    return Results;
  }

  // Dynamic work stealing over the shared index: instance sizes vary
  // wildly (satlib sweeps mix 20- and 250-variable formulas), so static
  // partitioning would leave workers idle.
  std::atomic<size_t> Next{0};
  auto Worker = [&]() {
    for (size_t I = Next.fetch_add(1); I < Formulas.size();
         I = Next.fetch_add(1))
      Results[I] = BackendImpl.compile(Formulas[I], Options.Qaoa);
  };
  std::vector<std::thread> Pool;
  Pool.reserve(Threads);
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back(Worker);
  for (std::thread &T : Pool)
    T.join();
  return Results;
}
