//===- core/BatchCompiler.h - Multi-threaded batch compilation -*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles a batch of formulas through one \c Backend across a thread
/// pool. Compilations are independent (each runs its own pass pipeline
/// over its own CompilationContext), so the batch parallelises trivially;
/// results come back in input order regardless of scheduling. This is the
/// building block for sweep drivers and the planned compilation service
/// (ROADMAP "Open items").
///
/// Sweeps that recompile the same formulas under varying QAOA parameters
/// should construct their WeaverBackend with a WeaverOptions::Cache: the
/// PassCache is mutex-guarded, so one cache is safely shared by every
/// worker of the pool, and results remain byte-identical to the uncached
/// batch regardless of which worker populates an entry first (see
/// tests/pass_cache_test.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_CORE_BATCHCOMPILER_H
#define WEAVER_CORE_BATCHCOMPILER_H

#include "baselines/Backend.h"
#include "core/WorkerPool.h"
#include "qaoa/Builder.h"
#include "sat/Cnf.h"

#include <vector>

namespace weaver {
namespace core {

/// Batch driver configuration.
struct BatchOptions {
  /// Worker threads; 0 selects std::thread::hardware_concurrency(). The
  /// pool never exceeds the batch size. Ignored when Pool is set.
  int NumThreads = 0;
  /// QAOA parameters applied to every instance of the batch.
  qaoa::QaoaParams Qaoa;
  /// Optional shared WorkerPool (not owned; must outlive the compiler).
  /// When set, compileAll posts its per-formula tasks there instead of
  /// spawning transient threads — the same pool a CompileService runs its
  /// jobs on, so batch and service work interleave under one scheduler.
  /// Must not be used from within a task of that pool (a bounded queue
  /// could deadlock).
  WorkerPool *Pool = nullptr;
};

/// Compiles formula batches through a backend with a worker pool.
class BatchCompiler {
public:
  /// \p BackendImpl must outlive the compiler and be thread-safe for
  /// concurrent compile() calls (all repository backends are).
  explicit BatchCompiler(const baselines::Backend &BackendImpl,
                         BatchOptions Options = {});

  /// Compiles every formula; Results[i] corresponds to Formulas[i].
  std::vector<baselines::BaselineResult>
  compileAll(const std::vector<sat::CnfFormula> &Formulas) const;

  /// Worker count used for a batch of \p BatchSize formulas.
  int effectiveThreads(size_t BatchSize) const;

private:
  const baselines::Backend &BackendImpl;
  BatchOptions Options;
};

} // namespace core
} // namespace weaver

#endif // WEAVER_CORE_BATCHCOMPILER_H
