//===- core/WChecker.h - wQASM equivalence checker -------------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wChecker (paper §6, Fig. 9) verifies that the FPQA annotations of a
/// wQASM file implement the logical circuit they annotate. It has two
/// stages:
///
///  1. *Pulse-to-gate translation (structural check, any size)*: the atom
///     motion is re-simulated on the device model; every Rydberg pulse is
///     translated into the CZ/CCZ gates its interaction clusters imply
///     (validating that atoms are mutually in range, equidistant, and that
///     no stray atoms interact), and every Raman pulse into the equivalent
///     single-qubit unitary. The translated gates must match the logical
///     gate statements one-for-one.
///
///  2. *Unitary check (small circuits)*: the circuit reconstructed from the
///     pulses alone is compared, up to global phase, against an
///     independently supplied reference circuit (the hardware-agnostic
///     original).
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_CORE_WCHECKER_H
#define WEAVER_CORE_WCHECKER_H

#include "circuit/Circuit.h"
#include "fpqa/HardwareParams.h"
#include "qasm/Program.h"
#include "support/Status.h"

#include <optional>
#include <string>

namespace weaver {
namespace core {

/// wChecker configuration.
struct CheckOptions {
  /// Largest register for which the full unitary check runs.
  int MaxUnitaryQubits = 10;
  /// Element-wise tolerance of the unitary comparison.
  double Tolerance = 1e-8;
};

/// Outcome of a wChecker run.
struct CheckReport {
  /// Pulse stream translates exactly onto the logical statements.
  bool StructuralOk = false;
  /// Whether the unitary comparison ran (skipped for large registers or
  /// when no reference was supplied).
  bool UnitaryChecked = false;
  /// Result of the unitary comparison (meaningful when UnitaryChecked).
  bool UnitaryOk = false;
  /// First diagnostic on failure.
  std::string Diagnostic;
  /// Circuit rebuilt from the pulses alone (U3 + CZ + CCZ).
  circuit::Circuit Reconstructed;

  bool passed() const {
    return StructuralOk && (!UnitaryChecked || UnitaryOk);
  }
};

/// Runs the wChecker on \p Program. When \p Reference is provided and small
/// enough, stage 2 compares the pulse-reconstructed circuit against it.
CheckReport checkWqasm(const qasm::WqasmProgram &Program,
                       const fpqa::HardwareParams &Hw,
                       const circuit::Circuit *Reference = nullptr,
                       const CheckOptions &Options = CheckOptions());

} // namespace core
} // namespace weaver

#endif // WEAVER_CORE_WCHECKER_H
