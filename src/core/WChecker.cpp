//===- core/WChecker.cpp - wQASM equivalence checker ----------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/WChecker.h"

#include "fpqa/Device.h"
#include "sim/GateMatrices.h"
#include "sim/Optimize.h"
#include "sim/StateVector.h"

#include <deque>
#include <set>

using namespace weaver;
using namespace weaver::core;
using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;
using qasm::Annotation;
using qasm::AnnotationKind;

namespace {

/// The unitary of a Raman pulse with rotation angles (x, y, z):
/// RZ(z) * RY(y) * RX(x), i.e. RX applied first.
sim::Matrix ramanUnitary(const Annotation &A) {
  sim::Matrix Rx = sim::gateUnitary(Gate(GateKind::RX, {0}, {A.AngleX}));
  sim::Matrix Ry = sim::gateUnitary(Gate(GateKind::RY, {0}, {A.AngleY}));
  sim::Matrix Rz = sim::gateUnitary(Gate(GateKind::RZ, {0}, {A.AngleZ}));
  return Rz.multiply(Ry.multiply(Rx));
}

/// A pending pulse that the following logical statements must realise.
struct Expectation {
  enum class Kind { Local, Global, Rydberg };
  Kind K = Kind::Local;
  sim::Matrix Unitary;  ///< Local/Global: the 2x2 pulse unitary
  int LocalQubit = -1;  ///< Local: the addressed qubit
  int Remaining = 0;    ///< Global: statements left to consume
  std::set<int> SeenQubits;               ///< Global: coverage tracking
  std::vector<std::set<int>> Clusters;    ///< Rydberg: unmatched clusters
};

class Checker {
public:
  Checker(const qasm::WqasmProgram &Program, const fpqa::HardwareParams &Hw)
      : Program(Program), Device(Hw),
        Reconstructed(Program.NumQubits, "reconstructed") {}

  CheckReport run(const Circuit *Reference, const CheckOptions &Options);

private:
  bool fail(const std::string &Message) {
    if (Report.Diagnostic.empty())
      Report.Diagnostic = Message;
    return false;
  }

  bool processAnnotation(const Annotation &A);
  bool matchStatement(const Gate &G);

  const qasm::WqasmProgram &Program;
  fpqa::FpqaDevice Device;
  Circuit Reconstructed;
  std::deque<Expectation> Pending;
  CheckReport Report;
};

bool Checker::processAnnotation(const Annotation &A) {
  if (Status S = Device.apply(A))
    return fail("invalid FPQA instruction: " + S.message());
  switch (A.Kind) {
  case AnnotationKind::RamanLocal: {
    Expectation E;
    E.K = Expectation::Kind::Local;
    E.Unitary = ramanUnitary(A);
    E.LocalQubit = A.Qubit;
    Pending.push_back(std::move(E));
    break;
  }
  case AnnotationKind::RamanGlobal: {
    Expectation E;
    E.K = Expectation::Kind::Global;
    E.Unitary = ramanUnitary(A);
    E.Remaining = static_cast<int>(Device.numAtoms());
    Pending.push_back(std::move(E));
    break;
  }
  case AnnotationKind::Rydberg: {
    auto Clusters = Device.rydbergClustersRef();
    if (!Clusters)
      return fail("invalid Rydberg pulse: " + Clusters.message());
    Expectation E;
    E.K = Expectation::Kind::Rydberg;
    for (const fpqa::RydbergCluster &C : **Clusters)
      E.Clusters.push_back(std::set<int>(C.Qubits.begin(), C.Qubits.end()));
    if (E.Clusters.empty())
      return fail("Rydberg pulse with no interacting atoms");
    Pending.push_back(std::move(E));
    break;
  }
  default:
    break; // pure motion/setup: no logical gate implied
  }
  return true;
}

bool Checker::matchStatement(const Gate &G) {
  if (G.kind() == GateKind::Barrier || G.kind() == GateKind::Measure) {
    if (!Pending.empty())
      return fail("unconsumed pulses before a non-unitary statement");
    return true;
  }
  if (Pending.empty())
    return fail("logical gate '" + G.str() + "' has no implementing pulse");
  Expectation &E = Pending.front();
  switch (E.K) {
  case Expectation::Kind::Local: {
    if (G.numQubits() != 1)
      return fail("local Raman pulse annotates multi-qubit gate '" +
                  G.str() + "'");
    if (G.qubit(0) != E.LocalQubit)
      return fail("local Raman pulse addresses q[" +
                  std::to_string(E.LocalQubit) + "] but gate acts on '" +
                  G.str() + "'");
    if (!sim::equalUpToGlobalPhase(sim::gateUnitary(G), E.Unitary, 1e-8))
      return fail("local Raman pulse angles do not implement '" + G.str() +
                  "'");
    double Theta, Phi, Lambda;
    sim::zyzDecompose(E.Unitary, Theta, Phi, Lambda);
    Reconstructed.u3(Theta, Phi, Lambda, G.qubit(0));
    Pending.pop_front();
    return true;
  }
  case Expectation::Kind::Global: {
    if (G.numQubits() != 1)
      return fail("global Raman pulse annotates multi-qubit gate '" +
                  G.str() + "'");
    if (!sim::equalUpToGlobalPhase(sim::gateUnitary(G), E.Unitary, 1e-8))
      return fail("global Raman pulse angles do not implement '" + G.str() +
                  "'");
    if (!E.SeenQubits.insert(G.qubit(0)).second)
      return fail("global Raman pulse matched twice against qubit " +
                  std::to_string(G.qubit(0)));
    double Theta, Phi, Lambda;
    sim::zyzDecompose(E.Unitary, Theta, Phi, Lambda);
    Reconstructed.u3(Theta, Phi, Lambda, G.qubit(0));
    if (--E.Remaining == 0)
      Pending.pop_front();
    return true;
  }
  case Expectation::Kind::Rydberg: {
    if (G.kind() != GateKind::CZ && G.kind() != GateKind::CCZ)
      return fail("Rydberg pulse cannot implement '" + G.str() + "'");
    std::set<int> Operands;
    for (unsigned I = 0, N = G.numQubits(); I < N; ++I)
      Operands.insert(G.qubit(I));
    bool Found = false;
    for (size_t I = 0; I < E.Clusters.size(); ++I)
      if (E.Clusters[I] == Operands) {
        E.Clusters.erase(E.Clusters.begin() + I);
        Found = true;
        break;
      }
    if (!Found)
      return fail("Rydberg pulse clusters do not include the operands of '" +
                  G.str() + "'");
    Reconstructed.append(G);
    if (E.Clusters.empty())
      Pending.pop_front();
    return true;
  }
  }
  return fail("unknown expectation kind");
}

CheckReport Checker::run(const Circuit *Reference,
                         const CheckOptions &Options) {
  Report.StructuralOk = true;
  for (const qasm::GateStatement &S : Program.Statements) {
    for (const Annotation &A : S.Annotations)
      if (!processAnnotation(A)) {
        Report.StructuralOk = false;
        return Report;
      }
    if (!matchStatement(S.Gate)) {
      Report.StructuralOk = false;
      return Report;
    }
  }
  for (const Annotation &A : Program.TrailingAnnotations)
    if (!processAnnotation(A)) {
      Report.StructuralOk = false;
      return Report;
    }
  if (!Pending.empty()) {
    Report.StructuralOk = false;
    fail("pulse stream ends with unconsumed gate pulses");
    return Report;
  }
  Report.Reconstructed = Reconstructed;

  if (Reference && Program.NumQubits <= Options.MaxUnitaryQubits) {
    Report.UnitaryChecked = true;
    Report.UnitaryOk = sim::circuitsEquivalent(
        Reconstructed, Reference->withoutNonUnitary(), Options.Tolerance);
    if (!Report.UnitaryOk)
      fail("pulse-reconstructed circuit differs from the reference unitary");
  }
  return Report;
}

} // namespace

CheckReport core::checkWqasm(const qasm::WqasmProgram &Program,
                             const fpqa::HardwareParams &Hw,
                             const Circuit *Reference,
                             const CheckOptions &Options) {
  Checker C(Program, Hw);
  return C.run(Reference, Options);
}
