//===- core/ClauseColoring.h - DSatur clause colouring ---------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The clause-colouring pass of wOptimizer (paper §5.2, Algorithm 1):
/// clauses sharing a variable conflict; colouring the conflict graph with
/// DSatur [Brélaz 1979] partitions the formula into groups of
/// variable-disjoint clauses whose cost-Hamiltonian fragments execute in
/// parallel under global FPQA pulses.
///
/// The paper bounds the pass at O(N^2) (§5.5); this implementation is
/// O((N + E) log N) over the E conflict edges: the graph is built from
/// per-variable occurrence lists (sort/unique per clause neighbourhood)
/// and vertex selection uses saturation buckets with per-vertex colour
/// bitsets instead of a linear scan per step. The selection order — and
/// therefore every colouring — is identical to the quadratic reference:
/// maximum saturation, then maximum degree, then smallest clause index.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_CORE_CLAUSECOLORING_H
#define WEAVER_CORE_CLAUSECOLORING_H

#include "sat/Cnf.h"

#include <vector>

namespace weaver {
namespace core {

/// Result of colouring a formula's clause conflict graph.
struct ClauseColoring {
  /// Colour of each clause, indexed like Formula.clauses().
  std::vector<int> ColorOf;
  /// Clause indices per colour, each inner list sorted ascending.
  std::vector<std::vector<size_t>> ClausesByColor;

  int numColors() const { return static_cast<int>(ClausesByColor.size()); }

  /// Verifies that no two same-coloured clauses share a variable.
  bool isValid(const sat::CnfFormula &Formula) const;
};

/// Builds the clause conflict adjacency lists: Adj[i] holds, ascending,
/// every clause sharing at least one variable with clause i (Algorithm 1's
/// adjacency matrix, kept sparse via per-variable occurrence lists). A
/// clause repeating a variable carries a self-loop, matching the dense
/// formulation. Shared by both colouring heuristics and the validator.
std::vector<std::vector<size_t>>
buildClauseConflictGraph(const sat::CnfFormula &Formula);

/// Colours \p Formula with the DSatur heuristic.
ClauseColoring colorClausesDSatur(const sat::CnfFormula &Formula);

/// Naive sequential (first-fit in input order) colouring — the ablation
/// baseline for the DSatur choice (DESIGN.md experiment A2).
ClauseColoring colorClausesFirstFit(const sat::CnfFormula &Formula);

} // namespace core
} // namespace weaver

#endif // WEAVER_CORE_CLAUSECOLORING_H
