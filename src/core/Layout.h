//===- core/Layout.h - Colour-zone geometry plan ---------------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Geometry of the diagonal colour zones (paper §5.3, Fig. 5): atoms live
/// in SLM "home" traps along y = 0; each colour group owns an execution
/// zone placed diagonally; inside a zone every clause occupies a site — an
/// equilateral triangle whose target spot is an SLM trap and whose two
/// control spots are AOD positions on the (single) AOD row.
///
/// All constants respect the device pre-conditions: home spacing exceeds
/// the minimum SLM separation, triangle side length (2 um) is inside the
/// Rydberg radius (2.5 um), site spacing (20 um) keeps distinct clusters
/// non-interacting, and transfer hops (2 um pickup, sqrt(3) um at sites)
/// are below the maximum transfer distance.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_CORE_LAYOUT_H
#define WEAVER_CORE_LAYOUT_H

#include "support/Geometry.h"

namespace weaver {
namespace core {

/// Geometry constants for code generation (micrometers).
struct Layout {
  double HomeSpacing = 6.0;   ///< x-distance between variable home traps
  double PickupRowY = 2.0;    ///< AOD row y while loading/unloading atoms
  double TriangleHalfWidth = 1.0; ///< control x-offset from the site centre
  double TriangleHeight = 1.7320508075688772; ///< sqrt(3): row above target
  double SiteSpacing = 20.0;  ///< x-distance between clause sites
  double ZoneBaseY = 20.0;    ///< y of the first colour zone's targets
  double ZoneStepY = 6.0;     ///< y-offset between consecutive zones
  double ZoneStepX = 3.0;     ///< diagonal x-offset between zones
  /// Number of physical zones cycled round-robin over the colours. The
  /// paper places colour zones diagonally; a real trap plane is finite, so
  /// colours reuse the zone window modulo this count (colours execute
  /// sequentially, so a zone is always empty when its next colour arrives).
  int ZoneCycle = 2;
  double CzLift = 3.0;        ///< row lift isolating controls from targets
  double PairShift = 3.0;     ///< x-shift isolating one control (ladder mode)
  double BumpGap = 0.9;       ///< spacing used when displacing a column
  double ParkSpacing = 2.0;   ///< spacing of parked (idle) columns

  /// Home trap position of qubit \p Q.
  Vec2 homePosition(int Q) const { return {HomeSpacing * Q, 0.0}; }

  /// Physical zone used by colour \p Color.
  int zoneOf(int Color) const { return Color % ZoneCycle; }

  /// Target-spot (SLM) position of site \p Site in colour \p Color's zone.
  Vec2 sitePosition(int Color, int Site) const {
    int Zone = zoneOf(Color);
    return {ZoneStepX * Zone + SiteSpacing * Site, zoneY(Color)};
  }

  /// y-coordinate of the targets of colour \p Color (zone-cycled).
  double zoneY(int Color) const {
    return ZoneBaseY + ZoneStepY * zoneOf(Color);
  }

  /// y-coordinate of the AOD row while colour \p Color executes gates.
  double gateRowY(int Color) const { return zoneY(Color) + TriangleHeight; }
};

} // namespace core
} // namespace weaver

#endif // WEAVER_CORE_LAYOUT_H
