//===- core/service/CompileService.h - Async compile service ---*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A long-running compile-job server on top of the Backend registry and
/// the WorkerPool — the ROADMAP "Async compilation service" item. Clients
/// submit (formula, backend kind, QAOA parameters, priority) jobs; the
/// service queues them through a bounded MPMC priority queue, runs them on
/// its persistent worker pool, and hands back a JobHandle (future-style
/// wait()/waitFor()) plus an optional completion callback.
///
/// Guarantees:
///  * Every submitted job resolves exactly once, to Completed, Cancelled,
///    or Failed — including under shutdown and racing cancellations.
///  * Cooperative cancellation: a queued job cancels immediately; a
///    running Weaver job aborts between pipeline passes (CancelToken
///    checkpoints in PassManager) and publishes nothing into the cache.
///  * Deduplication: identical in-flight requests — same formula, backend,
///    and QAOA parameters, the same identity the PassCache keys on —
///    coalesce onto one compile. Coalesced waiters share the result;
///    a coalesced job is only cancelled once every attached handle has
///    asked for cancellation.
///  * All Weaver jobs share one PassCache (service-owned unless an
///    external one is injected), so a parameter sweep submitted as jobs
///    gets the same template reuse as a BatchCompiler sweep, and output
///    stays byte-identical to direct compile() calls.
///
/// Handles may outlive the job but not the service; shutdown() (or the
/// destructor) resolves every pending job before returning, so wait()
/// never blocks past the service's lifetime.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_CORE_SERVICE_COMPILESERVICE_H
#define WEAVER_CORE_SERVICE_COMPILESERVICE_H

#include "baselines/Backend.h"
#include "core/WorkerPool.h"
#include "core/pipeline/PassCache.h"
#include "support/CancelToken.h"
#include "support/Table.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iterator>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

namespace weaver {
namespace core {

/// Lifecycle of a service job. Queued/Running are transient; the other
/// three are terminal and reported exactly once per job.
enum class JobState { Queued, Running, Completed, Cancelled, Failed };

/// Stable lower-case state name ("queued", "running", ...).
const char *jobStateName(JobState State);

/// Which PassCache tier served a Weaver job.
enum class CacheTier { None, Front, Program };

/// Stable lower-case tier name ("none", "front", "program").
const char *cacheTierName(CacheTier Tier);

/// One compile job: what to compile, on which backend, at what priority.
struct CompileRequest {
  sat::CnfFormula Formula;
  baselines::BackendKind Kind = baselines::BackendKind::Weaver;
  qaoa::QaoaParams Qaoa;
  /// Higher runs first; ties dequeue in submission order. A submission
  /// that coalesces onto an identical in-flight job inherits that job's
  /// queue position — priorities order distinct jobs, they do not
  /// re-prioritise one already queued.
  int Priority = 0;
  /// Deadline in seconds from submission; 0 disables. A job past its
  /// deadline cancels cooperatively: still queued, it resolves without
  /// compiling; running, it aborts at the next between-pass checkpoint.
  /// The outcome reports DeadlineExceeded so transports can distinguish
  /// a deadline from a client cancellation. Part of the dedup identity —
  /// requests with different deadline budgets never coalesce.
  double DeadlineSeconds = 0;
  /// Testing aid: arms the job's CancelToken to self-cancel at the Nth
  /// cooperative checkpoint (see CancelToken::cancelAtCheckpoint). 0
  /// disables. This is how tests pin "cancelled between pass K and K+1"
  /// deterministically.
  int CancelAtCheckpoint = 0;
  /// Per-job watchdog budget in seconds, measured from the moment the
  /// backend compile starts (queue wait does not count, unlike
  /// DeadlineSeconds). 0 inherits ServiceOptions::WatchdogSeconds. A
  /// compile that overruns the budget is resolved Failed by the watchdog
  /// (exactly once, with WatchdogTimedOut set) and its CancelToken is
  /// cancelled so a cooperatively hung pipeline releases its worker.
  /// Part of the dedup identity.
  double WatchdogSeconds = 0;
};

/// Everything a resolved job reports.
struct JobOutcome {
  uint64_t JobId = 0;
  JobState State = JobState::Queued;
  baselines::BaselineResult Metrics;
  /// Printed wQASM (Weaver jobs; empty for metric-only backends).
  std::string Wqasm;
  /// Failure/cancellation detail when State != Completed.
  std::string Diagnostic;
  /// Seconds between submission and the job leaving the queue (or being
  /// cancelled in it).
  double QueueSeconds = 0;
  /// Worker wall-clock seconds spent in the backend compile.
  double CompileSeconds = 0;
  /// PassCache tier that served the compile (Weaver only).
  CacheTier Tier = CacheTier::None;
  /// This handle attached to an already in-flight identical job.
  bool Coalesced = false;
  /// State == Cancelled because the request's deadline expired (not a
  /// client vote or shutdown).
  bool DeadlineExceeded = false;
  /// State == Failed because the per-job watchdog expired while the
  /// compile was running (the worker itself survived).
  bool WatchdogTimedOut = false;
};

/// CompileService configuration.
struct ServiceOptions {
  /// Worker threads; 0 selects std::thread::hardware_concurrency().
  int NumThreads = 0;
  /// Bounded job-queue capacity; submit() blocks while the queue is
  /// full. 0 means unbounded.
  size_t QueueCapacity = 256;
  /// Coalesce identical in-flight requests onto one compile.
  bool Deduplicate = true;
  /// Compile Weaver jobs through a PassCache. False (with Cache unset)
  /// runs every job cold — used by the differential tests to pin
  /// cache-on == cache-off byte identity through the service.
  bool UseCache = true;
  /// Optional external PassCache shared with other drivers (not owned;
  /// must outlive the service; overrides UseCache). nullptr with
  /// UseCache gives the service its own.
  pipeline::PassCache *Cache = nullptr;
  /// Optional persistent cache file. Loaded into the active cache at
  /// construction (a missing/stale/corrupt file is ignored: the service
  /// starts cold) and flushed back on a draining shutdown — so a
  /// restarted server warm-starts from its previous life's templates.
  /// Ignored when caching is off. See pipeline/PassCache.h.
  std::string CacheFile;
  /// Default per-job watchdog budget in seconds (see
  /// CompileRequest::WatchdogSeconds); 0 disables the watchdog for jobs
  /// that do not set their own budget. The watchdog thread starts lazily
  /// on the first armed job, so an unconfigured service pays nothing.
  double WatchdogSeconds = 0;
};

/// Async compilation service; see file comment.
class CompileService {
  struct Job;

public:
  /// Client-side view of one submitted job. Cheap to copy; copies share
  /// the cancellation vote. Valid only while the service is alive.
  class JobHandle {
  public:
    JobHandle() = default;

    bool valid() const { return J != nullptr; }
    uint64_t id() const;
    /// This handle coalesced onto an in-flight job at submit time.
    bool coalesced() const { return WasCoalesced; }
    /// Snapshot of the job's current state.
    JobState state() const;

    /// Blocks until the job resolves; returns the terminal outcome.
    JobOutcome wait() const;
    /// Bounded wait; returns false (leaving \p Out untouched) on timeout.
    bool waitFor(double Seconds, JobOutcome &Out) const;

    /// Registers this handle's cancellation vote (idempotent per handle,
    /// shared by its copies). The job cancels once every handle attached
    /// to it has voted: queued jobs resolve Cancelled immediately,
    /// running Weaver jobs abort at the next between-pass checkpoint, and
    /// already-resolved jobs are unaffected.
    void cancel() const;

  private:
    friend class CompileService;
    JobHandle(std::shared_ptr<Job> J, bool Coalesced, CompileService *Svc)
        : J(std::move(J)), Voted(std::make_shared<std::atomic<bool>>(false)),
          WasCoalesced(Coalesced), Svc(Svc) {}

    std::shared_ptr<Job> J;
    std::shared_ptr<std::atomic<bool>> Voted;
    bool WasCoalesced = false;
    CompileService *Svc = nullptr;
  };

  using Callback = std::function<void(const JobOutcome &)>;

  /// Aggregate counters; every job lands in exactly one of Completed,
  /// Cancelled, or Failed.
  struct ServiceStats {
    uint64_t Submitted = 0; ///< submit() calls, including coalesced
    uint64_t Coalesced = 0; ///< submissions served by an in-flight job
    uint64_t Completed = 0;
    uint64_t Cancelled = 0;
    /// Rejected at submit (shutdown) or compile reported infeasible
    /// (backend TimedOut/Unsupported, malformed input).
    uint64_t Failed = 0;
    /// Cancelled jobs whose cancellation was a deadline expiry (subset of
    /// Cancelled).
    uint64_t DeadlineExceeded = 0;
    /// Running compiles resolved Failed by the watchdog (subset of
    /// Failed).
    uint64_t WatchdogTimeouts = 0;
    uint64_t CompilesStarted = 0; ///< jobs whose backend compile began
    uint64_t FrontTierHits = 0;   ///< compiles served from the front tier
    uint64_t ProgramTierHits = 0; ///< compiles served from a template
    /// Entries warm-started from ServiceOptions::CacheFile (0 when no
    /// file was configured or the load was rejected).
    uint64_t CacheEntriesLoaded = 0;
    double TotalQueueSeconds = 0;
    double MaxQueueSeconds = 0;
    double TotalCompileSeconds = 0;
  };

  explicit CompileService(ServiceOptions Options = {});
  /// shutdown(/*Drain=*/true).
  ~CompileService();

  CompileService(const CompileService &) = delete;
  CompileService &operator=(const CompileService &) = delete;

  /// Enqueues \p Request; blocks while the job queue is at capacity.
  /// \p Cb, if set, runs exactly once on resolution (from the resolving
  /// thread). Jobs resolve Completed only with usable metrics; an
  /// infeasible compile (backend TimedOut/Unsupported) resolves Failed
  /// with the backend's diagnostic. After shutdown the job is rejected:
  /// it resolves Failed before submit returns and the callback still
  /// fires.
  JobHandle submit(CompileRequest Request, Callback Cb = nullptr);

  /// Outcome of a non-blocking trySubmit.
  enum class SubmitStatus {
    Accepted,  ///< a fresh job was queued
    Coalesced, ///< attached to an identical in-flight job (no queue slot)
    QueueFull, ///< rejected: job queue at capacity (handle is invalid)
    ShutDown,  ///< rejected: service is shutting down (handle is invalid)
  };

  /// Non-blocking submit for transports that must never stall their
  /// accept/poll loop: where submit() would block on a full job queue,
  /// this rejects with QueueFull so the caller can shed load (e.g. a
  /// RETRYING_LATER frame with a suggested backoff). Coalescing onto an
  /// in-flight job never consumes a queue slot and still succeeds at
  /// capacity. On QueueFull/ShutDown nothing was enqueued, no callback
  /// will fire, and \p Out is left invalid.
  SubmitStatus trySubmit(CompileRequest Request, JobHandle &Out,
                         Callback Cb = nullptr);

  /// Stops the service. Drain=true compiles every queued job first;
  /// Drain=false cancels queued jobs and asks running ones to abort at
  /// their next checkpoint. Either way every job is resolved and all
  /// workers have exited when this returns. Idempotent.
  void shutdown(bool Drain = true);

  /// Arms a drain budget: every currently live (queued or running) job
  /// gets its CancelToken deadline tightened to now + \p BudgetSeconds.
  /// Jobs that finish inside the budget complete normally; the rest
  /// cancel at their next checkpoint with DeadlineExceeded. The graceful-
  /// drain path calls this, then shutdown(/*Drain=*/true).
  void armDrainDeadline(double BudgetSeconds);

  /// Jobs waiting in the pool queue right now (admission-control input).
  size_t queueDepth() const { return Pool.queueDepth(); }

  ServiceStats stats() const;
  /// Aggregate stats as a support/Table ("metric" / "value" rows).
  Table statsTable() const;
  /// Per-job rows (queue wait, compile wall, cache tier) for a set of
  /// resolved outcomes — the per-job half of the service's reporting.
  static Table outcomeTable(const std::vector<JobOutcome> &Outcomes);

  /// The PassCache every Weaver job compiles through; null when caching
  /// was disabled via ServiceOptions.
  pipeline::PassCache *cache() { return ActiveCache; }
  int numThreads() const { return Pool.numThreads(); }

private:
  /// Exact-match identity of a request: formula payload + backend kind +
  /// QAOA parameters — the same tuple the PassCache keys on, extended by
  /// the gamma/beta point (different angles are different outputs, so
  /// they must not coalesce).
  struct JobKey {
    std::vector<uint64_t> Words;
    uint64_t Hash = 0;
    friend bool operator==(const JobKey &A, const JobKey &B) {
      return A.Hash == B.Hash && A.Words == B.Words;
    }
  };
  static JobKey makeKey(const CompileRequest &Request);

  /// Shared body of submit()/trySubmit(); Blocking selects Pool.post vs
  /// Pool.tryPost under the service mutex.
  SubmitStatus submitImpl(CompileRequest Request, Callback Cb, bool Blocking,
                          JobHandle &Out);

  const baselines::Backend &backendFor(baselines::BackendKind Kind) const;
  void runJob(const std::shared_ptr<Job> &J);
  /// Registers \p J with the watchdog: if it is still unresolved
  /// \p Seconds from now, the watchdog resolves it Failed and cancels its
  /// token. Starts the watchdog thread on first use.
  void armWatchdog(const std::shared_ptr<Job> &J, double Seconds);
  void watchdogLoop();
  /// Resolves \p J exactly once; later calls are no-ops. Returns whether
  /// this call won the resolution.
  bool resolveJob(const std::shared_ptr<Job> &J, JobOutcome Outcome);
  /// Drops \p J from the dedup index; caller holds the service mutex.
  void removeFromDedupLocked(const std::shared_ptr<Job> &J);
  void voteCancel(const std::shared_ptr<Job> &J,
                  std::atomic<bool> &HandleVoted);

  ServiceOptions Options;
  std::unique_ptr<pipeline::PassCache> OwnedCache;
  pipeline::PassCache *ActiveCache = nullptr;
  std::unique_ptr<baselines::Backend>
      Backends[std::size(baselines::AllBackendKinds)];

  mutable std::mutex Mutex; ///< guards the maps, counters, and ShuttingDown
  bool ShuttingDown = false;
  /// The draining shutdown already flushed ActiveCache to CacheFile; a
  /// second shutdown() (e.g. explicit call then destructor) must not
  /// rewrite the file.
  bool CacheFlushed = false;
  uint64_t NextJobId = 1;
  ServiceStats Counts;
  /// Dedup index over unresolved, uncancelled jobs.
  std::unordered_map<uint64_t,
                     std::vector<std::pair<JobKey, std::shared_ptr<Job>>>>
      InFlight;
  /// Every unresolved job by id (dedup on or off) — the shutdown path
  /// cancels through this.
  std::unordered_map<uint64_t, std::shared_ptr<Job>> Live;

  /// Watchdog state, under its own lock (never held together with the
  /// service mutex or a job mutex). The thread is joined in shutdown()
  /// only after the pool: a hung worker needs a live watchdog to be
  /// released.
  std::mutex WatchdogMutex;
  std::condition_variable WatchdogCV;
  bool WatchdogStop = false;
  std::vector<std::pair<std::chrono::steady_clock::time_point,
                        std::shared_ptr<Job>>>
      WatchdogQueue;
  std::thread WatchdogThread;

  WorkerPool Pool; ///< declared last: workers must die before the maps
};

} // namespace core
} // namespace weaver

#endif // WEAVER_CORE_SERVICE_COMPILESERVICE_H
