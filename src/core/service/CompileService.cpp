//===- core/service/CompileService.cpp - Async compile service ------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
//
// Lock order: the service mutex may be taken before a job mutex (submit's
// coalesce path); never the reverse while holding the job lock. resolveJob
// and the cancellation paths therefore release the job lock before touching
// the service maps. Pool.post is never called under the service mutex: a
// full bounded queue blocks the poster, and the workers that would free it
// need the service mutex to resolve their jobs.
//
//===----------------------------------------------------------------------===//

#include "core/service/CompileService.h"

#include "support/FaultInjection.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>

using namespace weaver;
using namespace weaver::core;

const char *core::jobStateName(JobState State) {
  switch (State) {
  case JobState::Queued:
    return "queued";
  case JobState::Running:
    return "running";
  case JobState::Completed:
    return "completed";
  case JobState::Cancelled:
    return "cancelled";
  case JobState::Failed:
    return "failed";
  }
  return "unknown";
}

const char *core::cacheTierName(CacheTier Tier) {
  switch (Tier) {
  case CacheTier::None:
    return "none";
  case CacheTier::Front:
    return "front";
  case CacheTier::Program:
    return "program";
  }
  return "unknown";
}

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

} // namespace

/// Shared state of one submitted job. State/Resolved/Outcome/Waiters/
/// CancelVotes/Callbacks are guarded by M; Id/Request/Key/EnqueueTime are
/// immutable after submit; InDedupIndex is guarded by the service mutex;
/// the CancelToken is internally atomic.
struct CompileService::Job {
  uint64_t Id = 0;
  CompileRequest Request;
  JobKey Key;
  CancelToken Cancel;
  std::chrono::steady_clock::time_point EnqueueTime;
  bool InDedupIndex = false; ///< guarded by the service mutex

  std::mutex M;
  std::condition_variable CV;
  JobState State = JobState::Queued;
  bool Started = false;         ///< the worker began the backend compile
  /// Set under M when the compile starts; the watchdog reads them to
  /// fill in a timed-out job's timings without racing the worker.
  std::chrono::steady_clock::time_point StartTime;
  double QueueSecondsAtStart = 0;
  bool CancelRequested = false; ///< all waiters voted; token is set
  /// Exactly-once guard: the first resolver claims the job, updates the
  /// service counters, and only then publishes Resolved — so by the time
  /// any wait() returns, stats() already reflects the job.
  bool ResolutionClaimed = false;
  bool Resolved = false;
  int Waiters = 1;    ///< handles attached (1 + coalesced submits)
  int CancelVotes = 0;
  JobOutcome Outcome;
  std::vector<Callback> Callbacks;
};

// --- JobHandle -----------------------------------------------------------

uint64_t CompileService::JobHandle::id() const { return J ? J->Id : 0; }

JobState CompileService::JobHandle::state() const {
  if (!J)
    return JobState::Failed;
  std::lock_guard<std::mutex> Lock(J->M);
  return J->State;
}

JobOutcome CompileService::JobHandle::wait() const {
  if (!J) {
    JobOutcome Out;
    Out.State = JobState::Failed;
    Out.Diagnostic = "invalid job handle";
    return Out;
  }
  std::unique_lock<std::mutex> Lock(J->M);
  J->CV.wait(Lock, [this]() { return J->Resolved; });
  JobOutcome Out = J->Outcome;
  Out.Coalesced = WasCoalesced;
  return Out;
}

bool CompileService::JobHandle::waitFor(double Seconds,
                                        JobOutcome &Out) const {
  if (!J) {
    Out.State = JobState::Failed;
    Out.Diagnostic = "invalid job handle";
    return true;
  }
  std::unique_lock<std::mutex> Lock(J->M);
  if (!J->CV.wait_for(Lock, std::chrono::duration<double>(Seconds),
                      [this]() { return J->Resolved; }))
    return false;
  Out = J->Outcome;
  Out.Coalesced = WasCoalesced;
  return true;
}

void CompileService::JobHandle::cancel() const {
  if (J && Svc)
    Svc->voteCancel(J, *Voted);
}

// --- Construction / teardown ---------------------------------------------

CompileService::CompileService(ServiceOptions Opts)
    : Options(Opts),
      Pool(PoolOptions{Opts.NumThreads, Opts.QueueCapacity}) {
  if (Options.Cache) {
    ActiveCache = Options.Cache;
  } else if (Options.UseCache) {
    OwnedCache = std::make_unique<pipeline::PassCache>();
    ActiveCache = OwnedCache.get();
  }
  if (ActiveCache && !Options.CacheFile.empty()) {
    // Warm-start: merge the persisted snapshot into the cache. Any defect
    // (missing file, stale fingerprint, corruption) just means a cold
    // start — the service must come up either way.
    if (!ActiveCache->loadSnapshot(Options.CacheFile))
      Counts.CacheEntriesLoaded = ActiveCache->size();
  }
  for (size_t I = 0; I < std::size(baselines::AllBackendKinds); ++I) {
    baselines::BackendKind Kind = baselines::AllBackendKinds[I];
    if (Kind == baselines::BackendKind::Weaver) {
      // The service's Weaver path compiles through the shared PassCache;
      // everything else comes from the registry with default knobs.
      WeaverOptions WOpt;
      WOpt.Cache = ActiveCache;
      Backends[I] = std::make_unique<baselines::WeaverBackend>(WOpt);
    } else {
      Backends[I] = baselines::createBackend(Kind);
    }
  }
}

CompileService::~CompileService() { shutdown(/*Drain=*/true); }

const baselines::Backend &
CompileService::backendFor(baselines::BackendKind Kind) const {
  return *Backends[static_cast<size_t>(Kind)];
}

// --- Job identity --------------------------------------------------------

CompileService::JobKey CompileService::makeKey(const CompileRequest &Request) {
  JobKey K;
  auto AddWord = [&K](uint64_t W) { K.Words.push_back(W); };
  auto AddDouble = [&AddWord](double V) {
    uint64_t Bits;
    static_assert(sizeof(Bits) == sizeof(V), "double is not 64-bit");
    std::memcpy(&Bits, &V, sizeof(Bits));
    AddWord(Bits);
  };
  const sat::CnfFormula &F = Request.Formula;
  AddWord(static_cast<uint64_t>(F.numVariables()));
  AddWord(static_cast<uint64_t>(F.numClauses()));
  for (const sat::Clause &C : F.clauses()) {
    for (sat::Literal L : C)
      AddWord(static_cast<uint64_t>(static_cast<int64_t>(L.dimacs())));
    AddWord(uint64_t{0}); // clause terminator
  }
  AddWord(static_cast<uint64_t>(Request.Kind));
  AddWord(static_cast<uint64_t>(Request.Qaoa.Layers));
  AddWord(static_cast<uint64_t>(Request.Qaoa.Measure));
  AddWord(static_cast<uint64_t>(Request.Qaoa.UseCompressedClauses));
  AddDouble(Request.Qaoa.Gamma);
  AddDouble(Request.Qaoa.Beta);
  // A self-cancel-armed request is a different job than a plain one: it
  // must neither hand its arming to an innocent waiter nor lose it by
  // joining an unarmed in-flight compile.
  AddWord(static_cast<uint64_t>(Request.CancelAtCheckpoint));
  // Same logic for deadlines: a tight-deadline request must not arm a
  // deadline on a patient waiter's job, nor ride an undeadlined one.
  AddDouble(Request.DeadlineSeconds);
  AddDouble(Request.WatchdogSeconds);
  // FNV-1a over the payload; lookups still compare the words exactly.
  uint64_t H = 1469598103934665603ull;
  for (uint64_t W : K.Words)
    for (int B = 0; B < 8; ++B) {
      H ^= (W >> (8 * B)) & 0xff;
      H *= 1099511628211ull;
    }
  K.Hash = H;
  return K;
}

// --- Submission ----------------------------------------------------------

CompileService::JobHandle CompileService::submit(CompileRequest Request,
                                                 Callback Cb) {
  JobHandle H;
  submitImpl(std::move(Request), std::move(Cb), /*Blocking=*/true, H);
  return H;
}

CompileService::SubmitStatus
CompileService::trySubmit(CompileRequest Request, JobHandle &Out,
                          Callback Cb) {
  Out = JobHandle();
  return submitImpl(std::move(Request), std::move(Cb), /*Blocking=*/false,
                    Out);
}

CompileService::SubmitStatus
CompileService::submitImpl(CompileRequest Request, Callback Cb, bool Blocking,
                           JobHandle &Out) {
  auto Now = std::chrono::steady_clock::now();
  JobKey Key;
  if (Options.Deduplicate)
    Key = makeKey(Request);

  std::shared_ptr<Job> J;
  bool Coalesced = false;
  bool Rejected = false;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    // A blocking submit counts even when rejected (the caller gets a
    // resolved-Failed handle); a non-blocking one counts only work that
    // actually entered the system — shed submissions are the transport's
    // statistic, not the service's.
    if (Blocking)
      ++Counts.Submitted;
    if (ShuttingDown) {
      if (!Blocking)
        return SubmitStatus::ShutDown;
      Rejected = true;
    } else if (Options.Deduplicate) {
      auto It = InFlight.find(Key.Hash);
      if (It != InFlight.end())
        for (std::pair<JobKey, std::shared_ptr<Job>> &Entry : It->second)
          if (Entry.first == Key) {
            // Attach under the job lock (service -> job lock order). A
            // job that resolved or is being cancelled is not joinable;
            // fall through to a fresh compile.
            std::lock_guard<std::mutex> JLock(Entry.second->M);
            if (!Entry.second->ResolutionClaimed &&
                !Entry.second->CancelRequested) {
              J = Entry.second;
              ++J->Waiters;
              if (Cb)
                J->Callbacks.push_back(std::move(Cb));
              Coalesced = true;
              ++Counts.Coalesced;
              if (!Blocking)
                ++Counts.Submitted;
            }
            break;
          }
    }
    if (!J) {
      J = std::make_shared<Job>();
      J->Id = NextJobId++;
      J->Request = std::move(Request);
      J->Key = std::move(Key);
      J->EnqueueTime = Now;
      if (J->Request.CancelAtCheckpoint > 0)
        J->Cancel.cancelAtCheckpoint(J->Request.CancelAtCheckpoint);
      if (J->Request.DeadlineSeconds > 0)
        J->Cancel.setDeadline(
            Now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(
                          J->Request.DeadlineSeconds)));
      if (Cb)
        J->Callbacks.push_back(std::move(Cb));
      if (!Rejected) {
        Live.emplace(J->Id, J);
        if (Options.Deduplicate) {
          InFlight[J->Key.Hash].push_back({J->Key, J});
          J->InDedupIndex = true;
        }
        if (!Blocking) {
          // Post under the service mutex — tryPost never waits, and a
          // failed post must roll the registration back before any
          // concurrent submit can coalesce onto the never-queued job.
          WorkerPool::PostResult R =
              Pool.tryPost([this, J]() { runJob(J); }, J->Request.Priority);
          if (R != WorkerPool::PostResult::Posted) {
            if (J->InDedupIndex)
              removeFromDedupLocked(J);
            Live.erase(J->Id);
            return R == WorkerPool::PostResult::Full
                       ? SubmitStatus::QueueFull
                       : SubmitStatus::ShutDown;
          }
          ++Counts.Submitted;
        }
      }
    }
  }

  if (Coalesced) {
    Out = JobHandle(std::move(J), /*Coalesced=*/true, this);
    return SubmitStatus::Coalesced;
  }

  if (Rejected) {
    JobOutcome RejOut;
    RejOut.State = JobState::Failed;
    RejOut.Diagnostic = "service is shut down";
    resolveJob(J, std::move(RejOut));
    Out = JobHandle(std::move(J), /*Coalesced=*/false, this);
    return SubmitStatus::ShutDown;
  }

  if (Blocking) {
    // Outside the service mutex: a bounded pool queue may block here, and
    // the workers that drain it take the service mutex to resolve.
    bool Posted =
        Pool.post([this, J]() { runJob(J); }, J->Request.Priority);
    if (!Posted) {
      JobOutcome FailOut;
      FailOut.State = JobState::Failed;
      FailOut.Diagnostic = "service is shut down";
      FailOut.QueueSeconds = secondsSince(J->EnqueueTime);
      resolveJob(J, std::move(FailOut));
    }
  }
  Out = JobHandle(std::move(J), /*Coalesced=*/false, this);
  return SubmitStatus::Accepted;
}

// --- Execution -----------------------------------------------------------

void CompileService::runJob(const std::shared_ptr<Job> &J) {
  double QueueSeconds = secondsSince(J->EnqueueTime);
  bool CancelledInQueue = false;
  {
    std::lock_guard<std::mutex> Lock(J->M);
    if (J->ResolutionClaimed)
      return; // cancelled (or rejected) before dequeue
    if (J->CancelRequested) {
      CancelledInQueue = true;
    } else {
      J->Started = true;
      J->State = JobState::Running;
      J->StartTime = std::chrono::steady_clock::now();
      J->QueueSecondsAtStart = QueueSeconds;
    }
  }
  if (CancelledInQueue) {
    // Cancellation won the race to the queue; the voter may be resolving
    // the job concurrently — resolveJob keeps it exactly-once.
    JobOutcome Out;
    Out.State = JobState::Cancelled;
    Out.Diagnostic = CancelledDiagnostic;
    Out.QueueSeconds = QueueSeconds;
    resolveJob(J, std::move(Out));
    return;
  }

  // A job whose deadline lapsed while it sat in the queue expires here
  // without burning a worker on a compile nobody is waiting for.
  if (J->Cancel.expireIfPastDeadline()) {
    JobOutcome Out;
    Out.State = JobState::Cancelled;
    Out.DeadlineExceeded = J->Cancel.wasDeadline();
    Out.Diagnostic =
        Out.DeadlineExceeded ? DeadlineDiagnostic : CancelledDiagnostic;
    Out.QueueSeconds = QueueSeconds;
    resolveJob(J, std::move(Out));
    return;
  }

  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Counts.CompilesStarted;
  }

  // The watchdog is armed before the compile (and before any injected
  // hang) so a job that never returns still resolves.
  double WatchdogBudget = J->Request.WatchdogSeconds > 0
                              ? J->Request.WatchdogSeconds
                              : Options.WatchdogSeconds;
  if (WatchdogBudget > 0)
    armWatchdog(J, WatchdogBudget);

  if (fault::enabled()) {
    // Simulated worker crash: the job dies with no result but the worker
    // thread itself survives to take the next job — the in-process
    // analogue of a compile process being killed.
    if (fault::fire("service.job.crash")) {
      JobOutcome Out;
      Out.State = JobState::Failed;
      Out.Diagnostic = "worker crashed (injected fault)";
      Out.QueueSeconds = QueueSeconds;
      resolveJob(J, std::move(Out));
      return;
    }
    // Simulated stuck compile: park until the watchdog (or a client
    // cancel) trips the token; delay_ms caps the stall when nothing does.
    fault::Decision Hang = fault::decide("service.job.hang");
    if (Hang.Fire)
      fault::hangUntilCancelled(Hang.DelayMs, &J->Cancel);
  }

  const baselines::Backend &B = backendFor(J->Request.Kind);
  auto Start = std::chrono::steady_clock::now();
  baselines::CompileOutput Result =
      B.compileFull(J->Request.Formula, J->Request.Qaoa, &J->Cancel);
  double CompileSeconds = secondsSince(Start);

  JobOutcome Out;
  // Infeasible compiles (backend TimedOut/Unsupported, malformed input)
  // are terminal failures, not completions: Completed promises usable
  // metrics and (for Weaver) a program.
  Out.State = Result.Cancelled
                  ? JobState::Cancelled
                  : (Result.Metrics.usable() ? JobState::Completed
                                             : JobState::Failed);
  Out.Metrics = std::move(Result.Metrics);
  Out.Wqasm = std::move(Result.Wqasm);
  if (Result.Cancelled) {
    Out.DeadlineExceeded = J->Cancel.wasDeadline();
    Out.Diagnostic =
        Out.DeadlineExceeded ? DeadlineDiagnostic : CancelledDiagnostic;
  } else if (Out.State == JobState::Failed)
    Out.Diagnostic = Out.Metrics.Diagnostic.empty()
                         ? "backend reported the instance infeasible"
                         : Out.Metrics.Diagnostic;
  Out.QueueSeconds = QueueSeconds;
  Out.CompileSeconds = CompileSeconds;
  Out.Tier = Result.ProgramFromCache
                 ? CacheTier::Program
                 : (Result.FrontHalfFromCache ? CacheTier::Front
                                              : CacheTier::None);
  resolveJob(J, std::move(Out));
}

bool CompileService::resolveJob(const std::shared_ptr<Job> &J,
                                JobOutcome Outcome) {
  {
    std::lock_guard<std::mutex> Lock(J->M);
    if (J->ResolutionClaimed)
      return false;
    J->ResolutionClaimed = true;
    Outcome.JobId = J->Id;
    J->Outcome = std::move(Outcome);
  }
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (J->InDedupIndex)
      removeFromDedupLocked(J);
    Live.erase(J->Id);
    switch (J->Outcome.State) {
    case JobState::Completed:
      ++Counts.Completed;
      break;
    case JobState::Cancelled:
      ++Counts.Cancelled;
      if (J->Outcome.DeadlineExceeded)
        ++Counts.DeadlineExceeded;
      break;
    default:
      ++Counts.Failed;
      if (J->Outcome.WatchdogTimedOut)
        ++Counts.WatchdogTimeouts;
      break;
    }
    Counts.TotalQueueSeconds += J->Outcome.QueueSeconds;
    Counts.MaxQueueSeconds =
        std::max(Counts.MaxQueueSeconds, J->Outcome.QueueSeconds);
    Counts.TotalCompileSeconds += J->Outcome.CompileSeconds;
    if (J->Outcome.Tier == CacheTier::Program)
      ++Counts.ProgramTierHits;
    else if (J->Outcome.Tier == CacheTier::Front)
      ++Counts.FrontTierHits;
  }
  std::vector<Callback> Callbacks;
  {
    std::lock_guard<std::mutex> Lock(J->M);
    J->State = J->Outcome.State;
    J->Resolved = true;
    Callbacks.swap(J->Callbacks);
    J->CV.notify_all();
  }
  // Outcome is immutable once claimed; reading it outside the lock only
  // races other readers. Callbacks run without any lock held.
  for (Callback &Cb : Callbacks)
    Cb(J->Outcome);
  return true;
}

void CompileService::removeFromDedupLocked(const std::shared_ptr<Job> &J) {
  auto It = InFlight.find(J->Key.Hash);
  if (It != InFlight.end()) {
    auto &Bucket = It->second;
    for (size_t I = 0; I < Bucket.size(); ++I)
      if (Bucket[I].second == J) {
        Bucket.erase(Bucket.begin() + I);
        break;
      }
    if (Bucket.empty())
      InFlight.erase(It);
  }
  J->InDedupIndex = false;
}

// --- Watchdog ------------------------------------------------------------

void CompileService::armWatchdog(const std::shared_ptr<Job> &J,
                                 double Seconds) {
  auto Deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(Seconds));
  std::lock_guard<std::mutex> Lock(WatchdogMutex);
  if (WatchdogStop)
    return; // tearing down; Pool.shutdown is already reaping the workers
  WatchdogQueue.emplace_back(Deadline, J);
  if (!WatchdogThread.joinable())
    WatchdogThread = std::thread([this]() { watchdogLoop(); });
  WatchdogCV.notify_all();
}

void CompileService::watchdogLoop() {
  std::unique_lock<std::mutex> Lock(WatchdogMutex);
  while (!WatchdogStop) {
    if (WatchdogQueue.empty()) {
      WatchdogCV.wait(Lock);
      continue;
    }
    auto Earliest = std::min_element(
        WatchdogQueue.begin(), WatchdogQueue.end(),
        [](const auto &A, const auto &B) { return A.first < B.first; });
    if (Earliest->first > std::chrono::steady_clock::now()) {
      WatchdogCV.wait_until(Lock, Earliest->first);
      continue; // re-scan: the queue (or WatchdogStop) may have changed
    }
    std::shared_ptr<Job> J = std::move(Earliest->second);
    WatchdogQueue.erase(Earliest);
    Lock.unlock();
    // Cancel first: a cooperatively hung compile (fault::hangUntilCancelled
    // or a between-pass checkpoint) observes the token and releases its
    // worker even though the job below is already resolved.
    J->Cancel.requestCancel();
    JobOutcome Out;
    Out.State = JobState::Failed;
    Out.WatchdogTimedOut = true;
    {
      std::lock_guard<std::mutex> JLock(J->M);
      Out.QueueSeconds = J->QueueSecondsAtStart;
      Out.CompileSeconds = secondsSince(J->StartTime);
    }
    Out.Diagnostic =
        formatf("watchdog: compile exceeded its %.3f s budget",
                J->Request.WatchdogSeconds > 0 ? J->Request.WatchdogSeconds
                                               : Options.WatchdogSeconds);
    // A job that resolved while we raced here makes this a no-op — the
    // exactly-once guarantee is resolveJob's, not ours.
    resolveJob(J, std::move(Out));
    Lock.lock();
  }
}

// --- Cancellation / shutdown ---------------------------------------------

void CompileService::voteCancel(const std::shared_ptr<Job> &J,
                                std::atomic<bool> &HandleVoted) {
  if (HandleVoted.exchange(true))
    return; // this handle (and its copies) already voted
  bool ResolveNow = false;
  {
    std::lock_guard<std::mutex> Lock(J->M);
    if (J->ResolutionClaimed)
      return; // cancel after completion: terminal state stands
    if (++J->CancelVotes < J->Waiters)
      return; // other coalesced clients still want the result
    J->CancelRequested = true;
    J->Cancel.requestCancel();
    ResolveNow = !J->Started;
  }
  {
    // A cancel-requested job leaves the dedup index so an identical new
    // submission starts a fresh compile instead of joining a doomed one.
    std::lock_guard<std::mutex> Lock(Mutex);
    if (J->InDedupIndex)
      removeFromDedupLocked(J);
  }
  if (ResolveNow) {
    JobOutcome Out;
    Out.State = JobState::Cancelled;
    Out.Diagnostic = CancelledDiagnostic;
    Out.QueueSeconds = secondsSince(J->EnqueueTime);
    resolveJob(J, std::move(Out));
  }
}

void CompileService::armDrainDeadline(double BudgetSeconds) {
  auto Deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(std::max(0.0, BudgetSeconds)));
  std::vector<std::shared_ptr<Job>> Snapshot;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Snapshot.reserve(Live.size());
    for (auto &Entry : Live)
      Snapshot.push_back(Entry.second);
  }
  // setDeadline keeps the earliest deadline, so a job that already had a
  // tighter per-request deadline is unaffected.
  for (const std::shared_ptr<Job> &J : Snapshot)
    J->Cancel.setDeadline(Deadline);
}

void CompileService::shutdown(bool Drain) {
  std::vector<std::shared_ptr<Job>> Pending;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
    if (!Drain)
      for (auto &Entry : Live)
        Pending.push_back(Entry.second);
  }
  for (const std::shared_ptr<Job> &J : Pending) {
    bool ResolveNow = false;
    {
      std::lock_guard<std::mutex> Lock(J->M);
      if (J->ResolutionClaimed)
        continue;
      J->CancelRequested = true;
      J->Cancel.requestCancel();
      ResolveNow = !J->Started;
    }
    if (ResolveNow) {
      JobOutcome Out;
      Out.State = JobState::Cancelled;
      Out.Diagnostic = std::string(CancelledDiagnostic) + " at shutdown";
      Out.QueueSeconds = secondsSince(J->EnqueueTime);
      resolveJob(J, std::move(Out));
    }
  }
  // Drain runs every still-queued task (resolved ones exit immediately);
  // !Drain discards them — safe because the loop above already resolved
  // every job that had not started. Running jobs finish or abort at their
  // next checkpoint; the pool joins them either way.
  Pool.shutdown(Drain);
  // Only after the workers are gone may the watchdog die: a hung compile
  // inside Pool.shutdown needs a live watchdog to be released.
  {
    std::lock_guard<std::mutex> Lock(WatchdogMutex);
    WatchdogStop = true;
    WatchdogQueue.clear();
    WatchdogCV.notify_all();
  }
  if (WatchdogThread.joinable())
    WatchdogThread.join();
  // Persist the cache only after a full drain (every worker has exited,
  // so the snapshot is a complete, settled view). A cancelling shutdown
  // skips the flush: the previous snapshot on disk stays valid.
  bool FlushHere = false;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Drain && !CacheFlushed && ActiveCache && !Options.CacheFile.empty())
      FlushHere = CacheFlushed = true;
  }
  if (FlushHere)
    ActiveCache->saveSnapshot(Options.CacheFile); // best-effort
}

// --- Reporting -----------------------------------------------------------

CompileService::ServiceStats CompileService::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counts;
}

Table CompileService::statsTable() const {
  ServiceStats S = stats();
  uint64_t Resolved = S.Completed + S.Cancelled + S.Failed;
  Table T({"metric", "value"});
  T.addRow({"jobs submitted", std::to_string(S.Submitted)});
  T.addRow({"  coalesced onto in-flight", std::to_string(S.Coalesced)});
  T.addRow({"jobs completed", std::to_string(S.Completed)});
  T.addRow({"jobs cancelled", std::to_string(S.Cancelled)});
  T.addRow({"  past deadline", std::to_string(S.DeadlineExceeded)});
  T.addRow({"jobs rejected", std::to_string(S.Failed)});
  T.addRow({"  watchdog timeouts", std::to_string(S.WatchdogTimeouts)});
  T.addRow({"compiles started", std::to_string(S.CompilesStarted)});
  T.addRow({"queue wait mean [ms]",
            formatf("%.3f", Resolved ? S.TotalQueueSeconds / Resolved * 1e3
                                     : 0.0)});
  T.addRow({"queue wait max [ms]", formatf("%.3f", S.MaxQueueSeconds * 1e3)});
  T.addRow({"compile wall mean [ms]",
            formatf("%.3f", S.CompilesStarted ? S.TotalCompileSeconds /
                                                    S.CompilesStarted * 1e3
                                              : 0.0)});
  T.addRow({"cache hits program tier", std::to_string(S.ProgramTierHits)});
  T.addRow({"cache hits front tier", std::to_string(S.FrontTierHits)});
  T.addRow({"cache entries loaded from file",
            std::to_string(S.CacheEntriesLoaded)});
  return T;
}

Table CompileService::outcomeTable(const std::vector<JobOutcome> &Outcomes) {
  Table T({"job", "backend", "state", "queue [ms]", "compile [ms]", "cache",
           "pulses", "EPS"});
  for (const JobOutcome &O : Outcomes) {
    bool Ran = O.State == JobState::Completed && O.Metrics.usable();
    T.addRow({std::to_string(O.JobId),
              O.Metrics.Compiler.empty() ? "-" : O.Metrics.Compiler,
              jobStateName(O.State), formatf("%.2f", O.QueueSeconds * 1e3),
              formatf("%.2f", O.CompileSeconds * 1e3), cacheTierName(O.Tier),
              Ran ? std::to_string(O.Metrics.Pulses) : "-",
              Ran && O.Metrics.EpsMeaningful ? formatf("%.3g", O.Metrics.Eps)
                                             : "-"});
  }
  return T;
}
