//===- core/ClauseColoring.cpp - DSatur clause colouring ------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/ClauseColoring.h"

#include <algorithm>
#include <set>

using namespace weaver;
using namespace weaver::core;
using sat::CnfFormula;

namespace {

/// Builds the clause conflict adjacency lists: an edge joins clauses that
/// share at least one variable (Algorithm 1's adjacency matrix, kept sparse
/// via per-variable occurrence lists so construction is near-linear).
std::vector<std::vector<size_t>> buildConflictGraph(const CnfFormula &F) {
  std::vector<std::vector<size_t>> VarOccurrences(F.numVariables() + 1);
  for (size_t I = 0; I < F.numClauses(); ++I)
    for (sat::Literal L : F.clause(I))
      VarOccurrences[L.variable()].push_back(I);

  std::vector<std::set<size_t>> AdjSets(F.numClauses());
  for (const auto &Occ : VarOccurrences)
    for (size_t I = 0; I < Occ.size(); ++I)
      for (size_t J = I + 1; J < Occ.size(); ++J) {
        AdjSets[Occ[I]].insert(Occ[J]);
        AdjSets[Occ[J]].insert(Occ[I]);
      }

  std::vector<std::vector<size_t>> Adj(F.numClauses());
  for (size_t I = 0; I < F.numClauses(); ++I)
    Adj[I].assign(AdjSets[I].begin(), AdjSets[I].end());
  return Adj;
}

ClauseColoring finalize(std::vector<int> ColorOf) {
  ClauseColoring R;
  int NumColors = 0;
  for (int C : ColorOf)
    NumColors = std::max(NumColors, C + 1);
  R.ClausesByColor.resize(NumColors);
  for (size_t I = 0; I < ColorOf.size(); ++I)
    R.ClausesByColor[ColorOf[I]].push_back(I);
  R.ColorOf = std::move(ColorOf);
  return R;
}

} // namespace

bool ClauseColoring::isValid(const CnfFormula &Formula) const {
  if (ColorOf.size() != Formula.numClauses())
    return false;
  for (size_t I = 0; I < Formula.numClauses(); ++I)
    for (size_t J = I + 1; J < Formula.numClauses(); ++J)
      if (ColorOf[I] == ColorOf[J] &&
          Formula.clause(I).sharesVariableWith(Formula.clause(J)))
        return false;
  return true;
}

ClauseColoring core::colorClausesDSatur(const CnfFormula &Formula) {
  size_t N = Formula.numClauses();
  std::vector<std::vector<size_t>> Adj = buildConflictGraph(Formula);
  std::vector<int> ColorOf(N, -1);
  std::vector<std::set<int>> NeighbourColors(N);
  std::vector<size_t> Degree(N);
  for (size_t I = 0; I < N; ++I)
    Degree[I] = Adj[I].size();

  for (size_t Step = 0; Step < N; ++Step) {
    // Pick the uncoloured vertex with maximum saturation (number of
    // distinct neighbour colours), breaking ties by degree then index.
    size_t Best = N;
    for (size_t I = 0; I < N; ++I) {
      if (ColorOf[I] != -1)
        continue;
      if (Best == N ||
          NeighbourColors[I].size() > NeighbourColors[Best].size() ||
          (NeighbourColors[I].size() == NeighbourColors[Best].size() &&
           Degree[I] > Degree[Best]))
        Best = I;
    }
    // Smallest colour absent from the neighbourhood.
    int Color = 0;
    while (NeighbourColors[Best].count(Color))
      ++Color;
    ColorOf[Best] = Color;
    for (size_t Nb : Adj[Best])
      NeighbourColors[Nb].insert(Color);
  }
  return finalize(std::move(ColorOf));
}

ClauseColoring core::colorClausesFirstFit(const CnfFormula &Formula) {
  size_t N = Formula.numClauses();
  std::vector<std::vector<size_t>> Adj = buildConflictGraph(Formula);
  std::vector<int> ColorOf(N, -1);
  for (size_t I = 0; I < N; ++I) {
    std::set<int> Used;
    for (size_t Nb : Adj[I])
      if (ColorOf[Nb] != -1)
        Used.insert(ColorOf[Nb]);
    int Color = 0;
    while (Used.count(Color))
      ++Color;
    ColorOf[I] = Color;
  }
  return finalize(std::move(ColorOf));
}
