//===- core/ClauseColoring.cpp - DSatur clause colouring ------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/ClauseColoring.h"

#include <algorithm>
#include <cstdint>
#include <set>

using namespace weaver;
using namespace weaver::core;
using sat::CnfFormula;
using sat::Literal;

namespace {

/// Per-variable lists of the clauses mentioning the variable, ascending,
/// with each clause listed at most once per variable (a clause repeating a
/// variable contributes one entry). Shared substrate of the conflict
/// graph, the colouring validator, and both colouring heuristics.
std::vector<std::vector<size_t>> buildOccurrenceLists(const CnfFormula &F) {
  int MaxVar = F.numVariables();
  for (const sat::Clause &C : F.clauses())
    for (Literal L : C)
      MaxVar = std::max(MaxVar, L.variable());
  std::vector<std::vector<size_t>> Occ(MaxVar + 1);
  for (size_t I = 0; I < F.numClauses(); ++I)
    for (Literal L : F.clause(I)) {
      std::vector<size_t> &List = Occ[L.variable()];
      // Clause indices arrive in ascending order, so within-clause
      // duplicates (a clause repeating a variable) are always adjacent.
      if (List.empty() || List.back() != I)
        List.push_back(I);
    }
  return Occ;
}

ClauseColoring finalize(std::vector<int> ColorOf) {
  ClauseColoring R;
  int NumColors = 0;
  for (int C : ColorOf)
    NumColors = std::max(NumColors, C + 1);
  R.ClausesByColor.resize(NumColors);
  for (size_t I = 0; I < ColorOf.size(); ++I)
    R.ClausesByColor[ColorOf[I]].push_back(I);
  R.ColorOf = std::move(ColorOf);
  return R;
}

/// Marks \p Color in the bitset; returns true when it was already set.
bool markColor(std::vector<uint64_t> &Words, int Color) {
  size_t W = static_cast<size_t>(Color) / 64;
  uint64_t Bit = 1ull << (Color % 64);
  if (W >= Words.size())
    Words.resize(W + 1, 0);
  if (Words[W] & Bit)
    return true;
  Words[W] |= Bit;
  return false;
}

/// Smallest colour index absent from the bitset.
int firstAbsentColor(const std::vector<uint64_t> &Words) {
  for (size_t W = 0; W < Words.size(); ++W)
    if (~Words[W])
      return static_cast<int>(W * 64 + __builtin_ctzll(~Words[W]));
  return static_cast<int>(Words.size() * 64);
}

} // namespace

std::vector<std::vector<size_t>>
core::buildClauseConflictGraph(const CnfFormula &F) {
  std::vector<std::vector<size_t>> Occ = buildOccurrenceLists(F);
  size_t N = F.numClauses();
  std::vector<std::vector<size_t>> Adj(N);
  std::vector<size_t> Gather;
  for (size_t I = 0; I < N; ++I) {
    Gather.clear();
    bool RepeatsVariable = false;
    const sat::Clause &C = F.clause(I);
    for (size_t A = 0; A < C.size(); ++A) {
      for (size_t B = 0; B < A; ++B)
        RepeatsVariable |= C[A].variable() == C[B].variable();
      const std::vector<size_t> &List = Occ[C[A].variable()];
      Gather.insert(Gather.end(), List.begin(), List.end());
    }
    std::sort(Gather.begin(), Gather.end());
    Gather.erase(std::unique(Gather.begin(), Gather.end()), Gather.end());
    // A clause conflicts with itself only when it repeats a variable (the
    // dense adjacency matrix of Algorithm 1 has that self-loop; it is
    // harmless to both heuristics but contributes to the degree
    // tie-break, so it is preserved).
    if (!RepeatsVariable) {
      auto Self = std::lower_bound(Gather.begin(), Gather.end(), I);
      if (Self != Gather.end() && *Self == I)
        Gather.erase(Self);
    }
    Adj[I] = Gather;
  }
  return Adj;
}

bool ClauseColoring::isValid(const CnfFormula &Formula) const {
  if (ColorOf.size() != Formula.numClauses())
    return false;
  // Two clauses conflict iff they appear together in some variable's
  // occurrence list, so a colouring is valid iff no list repeats a colour.
  std::vector<std::vector<size_t>> Occ = buildOccurrenceLists(Formula);
  std::vector<int> Colors;
  for (const std::vector<size_t> &Clauses : Occ) {
    if (Clauses.size() < 2)
      continue;
    Colors.clear();
    for (size_t I : Clauses)
      Colors.push_back(ColorOf[I]);
    std::sort(Colors.begin(), Colors.end());
    if (std::adjacent_find(Colors.begin(), Colors.end()) != Colors.end())
      return false;
  }
  return true;
}

ClauseColoring core::colorClausesDSatur(const CnfFormula &Formula) {
  size_t N = Formula.numClauses();
  std::vector<std::vector<size_t>> Adj = buildClauseConflictGraph(Formula);
  std::vector<int> ColorOf(N, -1);
  std::vector<int> Saturation(N, 0);
  std::vector<std::vector<uint64_t>> NeighbourColors(N);

  // Buckets[s] holds every uncoloured vertex of saturation s, keyed so the
  // bucket minimum is the DSatur pick at that level: degree descending,
  // then index ascending — the exact tie-break of the former linear scan.
  auto KeyOf = [N, &Adj](size_t I) {
    return (static_cast<uint64_t>(N - Adj[I].size()) << 32) | I;
  };
  std::vector<std::set<uint64_t>> Buckets(1);
  for (size_t I = 0; I < N; ++I)
    Buckets[0].insert(KeyOf(I));

  int MaxSat = 0;
  for (size_t Step = 0; Step < N; ++Step) {
    while (Buckets[MaxSat].empty())
      --MaxSat;
    auto BestIt = Buckets[MaxSat].begin();
    size_t Best = *BestIt & 0xffffffffu;
    Buckets[MaxSat].erase(BestIt);

    int Color = firstAbsentColor(NeighbourColors[Best]);
    ColorOf[Best] = Color;
    for (size_t Nb : Adj[Best]) {
      if (ColorOf[Nb] != -1)
        continue;
      if (markColor(NeighbourColors[Nb], Color))
        continue; // colour already counted towards Nb's saturation
      Buckets[Saturation[Nb]].erase(KeyOf(Nb));
      ++Saturation[Nb];
      if (static_cast<size_t>(Saturation[Nb]) >= Buckets.size())
        Buckets.resize(Saturation[Nb] + 1);
      Buckets[Saturation[Nb]].insert(KeyOf(Nb));
      MaxSat = std::max(MaxSat, Saturation[Nb]);
    }
  }
  return finalize(std::move(ColorOf));
}

ClauseColoring core::colorClausesFirstFit(const CnfFormula &Formula) {
  size_t N = Formula.numClauses();
  std::vector<std::vector<size_t>> Adj = buildClauseConflictGraph(Formula);
  std::vector<int> ColorOf(N, -1);
  // LastUser[c] == I marks colour c as taken by a neighbour of clause I;
  // stale stamps from earlier clauses need no clearing.
  std::vector<size_t> LastUser(N + 1, SIZE_MAX);
  for (size_t I = 0; I < N; ++I) {
    for (size_t Nb : Adj[I])
      if (ColorOf[Nb] != -1)
        LastUser[ColorOf[Nb]] = I;
    int Color = 0;
    while (LastUser[Color] == I)
      ++Color;
    ColorOf[I] = Color;
  }
  return finalize(std::move(ColorOf));
}
