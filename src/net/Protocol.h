//===- net/Protocol.h - Length-prefixed wire protocol ----------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol of the networked compile service. Every frame is
///
///     [u32 Length][u8 Type][payload: Length-1 bytes]     (little-endian)
///
/// where Length covers the type byte plus the payload and is bounded by a
/// direction-specific cap, so a hostile 4-byte prefix can neither trigger
/// a huge allocation nor stall a connection in "almost a frame" forever.
/// Payloads are encoded with support/BinaryIO: the bounds-checked
/// BinaryReader makes truncated or bit-flipped payloads a decode error,
/// never UB. Decoders also validate semantics (finite angles, known
/// backend, bounded sizes) with the same helpers the compile_server line
/// protocol uses, so both entry points reject hostile input identically.
///
/// Error codes a response can carry, and their contract:
///  * Ok               — compile finished; wQASM byte-identical to direct
///  * Failed           — terminal failure (diagnostic says why); don't retry
///  * Cancelled        — client cancel or server drain cancelled the job
///  * DeadlineExceeded — the request's deadline lapsed queued or mid-compile
///  * RetryLater       — admission control shed the request; BackoffMs is
///                       the server's suggested wait before resubmitting
///  * GoingAway        — server is draining; reconnect later
///  * Malformed        — the request frame failed validation; the server
///                       closes the connection after sending this (framing
///                       may be corrupt past a malformed frame)
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_NET_PROTOCOL_H
#define WEAVER_NET_PROTOCOL_H

#include "baselines/Backend.h"
#include "support/Status.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace weaver {
namespace net {

// --- Limits ---------------------------------------------------------------

/// Client-to-server frames are small (a request header plus at most a
/// DIMACS text); anything bigger is hostile.
inline constexpr size_t MaxRequestFrameBytes = 1u << 20; // 1 MiB
/// Server-to-client frames carry printed wQASM programs (MBs at 250-var
/// SATLIB sizes).
inline constexpr size_t MaxResponseFrameBytes = 64u << 20; // 64 MiB
/// Bounds on compile-request parameters; requests outside them are
/// rejected as malformed, not clamped.
inline constexpr long long MaxRequestVars = 4096;
inline constexpr long long MaxRequestIndex = 1000000;
inline constexpr long long MaxRequestPriority = 1000000;
inline constexpr long long MaxDeadlineMs = 3600000; // 1 hour
inline constexpr long long MaxRequestLayers = 64;
/// Bound on one serve-mode command line (compile_server --serve).
inline constexpr size_t MaxCommandLineBytes = 1u << 16; // 64 KiB

/// Frame header size on the wire: u32 length + u8 type.
inline constexpr size_t FrameHeaderBytes = 5;

// --- Frame types ----------------------------------------------------------

enum class FrameType : uint8_t {
  // client -> server
  CompileRequest = 1,
  CancelRequest = 2,
  StatsRequest = 3,
  Ping = 4,
  // server -> client
  Result = 17,
  Stats = 18,
  Error = 19,
  GoingAway = 20,
  Pong = 21,
};

/// Stable lower-case frame-type name for diagnostics.
const char *frameTypeName(FrameType Type);

enum class ResponseCode : uint8_t {
  Ok = 0,
  Failed = 1,
  Cancelled = 2,
  DeadlineExceeded = 3,
  RetryLater = 4,
  GoingAway = 5,
  Malformed = 6,
};

/// Stable upper-case code name ("OK", "DEADLINE_EXCEEDED", ...).
const char *responseCodeName(ResponseCode Code);

// --- Frame payload structs ------------------------------------------------

/// Where a compile request's formula comes from.
enum class FormulaSource : uint8_t {
  Satlib = 0, ///< server generates satlibInstance(NumVars, Index)
  Dimacs = 1, ///< request carries DIMACS text (untrusted; bounded parse)
};

struct CompileFrame {
  uint64_t RequestId = 0; ///< client-chosen correlation id
  baselines::BackendKind Kind = baselines::BackendKind::Weaver;
  int32_t Priority = 0;
  uint32_t DeadlineMs = 0; ///< 0 = no deadline
  double Gamma = 0.7;
  double Beta = 0.3;
  int32_t Layers = 1;
  bool Measure = false;
  bool Compressed = false;
  FormulaSource Source = FormulaSource::Satlib;
  int32_t NumVars = 20; ///< Satlib source
  int32_t Index = 1;    ///< Satlib source (1-based)
  std::string Dimacs;   ///< Dimacs source
};

struct CancelFrame {
  uint64_t RequestId = 0;
};

struct ResultFrame {
  uint64_t RequestId = 0;
  ResponseCode Code = ResponseCode::Ok;
  uint32_t BackoffMs = 0; ///< RetryLater: suggested resubmit delay
  double QueueSeconds = 0;
  double CompileSeconds = 0;
  uint8_t CacheTier = 0; ///< core::CacheTier value
  uint64_t Pulses = 0;
  std::string Diagnostic;
  std::string Wqasm;
};

/// Transport + service counters as ordered (name, value) pairs plus the
/// rendered human-readable tables. The pairs are the machine-readable
/// half — tests and load_gen assert on them without parsing tables.
struct StatsFrame {
  std::vector<std::pair<std::string, uint64_t>> Counters;
  std::string Text;

  /// Value of \p Name, or 0 when absent.
  uint64_t counter(std::string_view Name) const;
};

struct ErrorFrame {
  ResponseCode Code = ResponseCode::Malformed;
  std::string Message;
};

// --- Encoding -------------------------------------------------------------

/// A parsed frame: type plus raw payload bytes.
struct Frame {
  FrameType Type = FrameType::Ping;
  std::string Payload;
};

std::string encodeCompile(const CompileFrame &F);
std::string encodeCancel(const CancelFrame &F);
std::string encodeStatsRequest();
std::string encodePing();
std::string encodeResult(const ResultFrame &F);
std::string encodeStats(const StatsFrame &F);
std::string encodeError(const ErrorFrame &F);
std::string encodeGoingAway(const std::string &Reason);
std::string encodePong();

// --- Decoding -------------------------------------------------------------

Expected<CompileFrame> decodeCompile(std::string_view Payload);
Expected<CancelFrame> decodeCancel(std::string_view Payload);
Expected<ResultFrame> decodeResult(std::string_view Payload);
Expected<StatsFrame> decodeStats(std::string_view Payload);
Expected<ErrorFrame> decodeError(std::string_view Payload);
/// GoingAway payload: the reason string.
Expected<std::string> decodeGoingAway(std::string_view Payload);

// --- Incremental frame parser --------------------------------------------

/// Reassembles frames from a TCP byte stream. Feed whatever recv()
/// returned; complete frames pop out of next(). A length prefix above
/// \p MaxFrame (or zero) poisons the parser — the connection must be
/// closed, since byte alignment is lost.
class FrameParser {
public:
  explicit FrameParser(size_t MaxFrame) : MaxFrame(MaxFrame) {}

  /// Appends raw bytes. Returns false once the stream is poisoned.
  bool feed(const char *Data, size_t Len);
  /// Pops the next complete frame; false when none is buffered.
  bool next(Frame &Out);

  bool poisoned() const { return Poisoned; }
  /// Bytes of an incomplete trailing frame currently buffered.
  size_t pendingBytes() const { return Buf.size() - Consumed; }

private:
  size_t MaxFrame;
  std::string Buf;
  size_t Consumed = 0; ///< fully parsed prefix of Buf
  bool Poisoned = false;
};

// --- Serve-mode command line ----------------------------------------------

/// One parsed compile_server --serve command. The line protocol is the
/// human-typable twin of the frame protocol and shares its validation:
/// the same bounds, the same rejection of overflowing ints, NUL bytes,
/// oversized input, and trailing garbage.
struct ServeCommand {
  enum class Action { Compile, File, Cancel, Stats, Quit } Act =
      Action::Stats;
  CompileFrame Compile;     ///< Action::Compile (Satlib source)
  std::string Path;         ///< Action::File — DIMACS path (I/O is the
                            ///< caller's; parse with bounded DimacsLimits)
  baselines::BackendKind FileKind = baselines::BackendKind::Weaver;
  uint64_t CancelId = 0;    ///< Action::Cancel
};

/// Parses one serve-mode line:
///   compile <backend> <nvars> <index> [gamma beta [priority [deadline_ms]]]
///   file <path> [backend]
///   cancel <jobid>
///   stats
///   quit
/// Hostile input — unknown commands, missing fields, overflowing or
/// garbage numerics, NUL bytes, lines beyond MaxCommandLineBytes — is an
/// error, never a silently defaulted request.
Expected<ServeCommand> parseServeCommand(std::string_view Line);

/// Shared semantic validation of a compile request's parameters (angles
/// finite, layers/priority/deadline in range, satlib size/index in
/// range). Both decodeCompile and parseServeCommand funnel through this.
Status validateCompileParams(const CompileFrame &F);

} // namespace net
} // namespace weaver

#endif // WEAVER_NET_PROTOCOL_H
