//===- net/Server.cpp - Socket transport for CompileService --------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "net/Server.h"

#include "sat/Dimacs.h"
#include "sat/Generator.h"

#include <algorithm>
#include <poll.h>

using namespace weaver;
using namespace weaver::net;

Server::Server(ServerOptions Options)
    : Options(Options), Faults(Options.Faults), Service(Options.Service) {}

Server::~Server() = default;

Status Server::start() {
  auto Listen = tcpListen(Options.BindAddress, Options.Port, Options.Backlog,
                          BoundPort);
  if (!Listen)
    return Listen.status();
  ListenFd = Listen.take();
  auto W = WakePipe::create();
  if (!W)
    return W.status();
  Wake = std::make_unique<WakePipe>(W.take());
  return Status::success();
}

void Server::requestStop() {
  StopRequested.store(true, std::memory_order_relaxed);
  if (Wake)
    Wake->notify();
}

TransportStats Server::transportStats() const {
  std::lock_guard<std::mutex> Lock(StatsMutex);
  return Stats;
}

uint32_t Server::suggestedBackoffMs() const {
  // Deeper queue, longer suggested wait; bounded so a draining server
  // never tells clients to disappear for minutes.
  size_t Depth = Service.queueDepth();
  uint64_t Ms = 25 * (1 + std::min<size_t>(Depth, 200));
  return static_cast<uint32_t>(std::min<uint64_t>(Ms, 5000));
}

ResultFrame Server::resultFromOutcome(uint64_t RequestId,
                                      const core::JobOutcome &Outcome) {
  ResultFrame R;
  R.RequestId = RequestId;
  R.QueueSeconds = Outcome.QueueSeconds;
  R.CompileSeconds = Outcome.CompileSeconds;
  R.CacheTier = static_cast<uint8_t>(Outcome.Tier);
  switch (Outcome.State) {
  case core::JobState::Completed:
    R.Code = ResponseCode::Ok;
    R.Pulses = Outcome.Metrics.Pulses;
    R.Wqasm = Outcome.Wqasm;
    break;
  case core::JobState::Cancelled:
    R.Code = Outcome.DeadlineExceeded ? ResponseCode::DeadlineExceeded
                                      : ResponseCode::Cancelled;
    R.Diagnostic = Outcome.Diagnostic;
    break;
  default:
    R.Code = ResponseCode::Failed;
    R.Diagnostic = Outcome.Diagnostic;
    break;
  }
  return R;
}

void Server::queueOrDrop(Client &C, const std::string &Bytes) {
  if (C.Conn.queueWrite(Bytes)) {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Stats.FramesOut;
    return;
  }
  // The write queue is full: the client reads too slowly to be worth
  // buffering for. Dropping a frame silently would break exactly-once
  // delivery, so the connection goes instead.
  C.Dead = true;
  std::lock_guard<std::mutex> Lock(StatsMutex);
  ++Stats.SlowClientDrops;
}

void Server::sendResult(Client &C, const ResultFrame &R) {
  queueOrDrop(C, encodeResult(R));
  std::lock_guard<std::mutex> Lock(StatsMutex);
  ++Stats.ResultsSent;
}

StatsFrame Server::buildStats() {
  StatsFrame F;
  core::CompileService::ServiceStats S = Service.stats();
  TransportStats T = transportStats();
  F.Counters = {
      {"submitted", S.Submitted},
      {"coalesced", S.Coalesced},
      {"completed", S.Completed},
      {"cancelled", S.Cancelled},
      {"deadline_exceeded", S.DeadlineExceeded},
      {"failed", S.Failed},
      {"compiles_started", S.CompilesStarted},
      {"front_tier_hits", S.FrontTierHits},
      {"program_tier_hits", S.ProgramTierHits},
      {"queue_depth", Service.queueDepth()},
      {"connections", Clients.size()},
      {"accepted", T.Accepted},
      {"disconnected", T.Disconnected},
      {"frames_in", T.FramesIn},
      {"frames_out", T.FramesOut},
      {"requests_admitted", T.RequestsAdmitted},
      {"results_sent", T.ResultsSent},
      {"shed", T.Shed},
      {"malformed_frames", T.MalformedFrames},
      {"poisoned_streams", T.PoisonedStreams},
      {"slow_client_drops", T.SlowClientDrops},
      {"idle_drops", T.IdleDrops},
      {"injected_kills", T.InjectedKills},
      {"orphaned_results", T.OrphanedResults},
      {"going_away_sent", T.GoingAwaySent},
  };
  F.Text = Service.statsTable().render();
  return F;
}

void Server::handleCompile(Client &C, const Frame &F) {
  auto Decoded = decodeCompile(F.Payload);
  if (!Decoded) {
    {
      std::lock_guard<std::mutex> Lock(StatsMutex);
      ++Stats.MalformedFrames;
    }
    ErrorFrame E;
    E.Code = ResponseCode::Malformed;
    E.Message = Decoded.message();
    queueOrDrop(C, encodeError(E));
    C.Conn.CloseAfterFlush = true;
    return;
  }
  const CompileFrame &Req = *Decoded;

  if (Draining || C.Conn.SentGoingAway) {
    ResultFrame R;
    R.RequestId = Req.RequestId;
    R.Code = ResponseCode::GoingAway;
    R.Diagnostic = "server is draining";
    sendResult(C, R);
    return;
  }
  if (C.InFlight.count(Req.RequestId)) {
    // A reused id makes result correlation ambiguous; that's a client
    // bug, not load, so it gets an error rather than a retry hint.
    ErrorFrame E;
    E.Code = ResponseCode::Malformed;
    E.Message = "request id already in flight on this connection";
    queueOrDrop(C, encodeError(E));
    C.Conn.CloseAfterFlush = true;
    return;
  }
  if (C.InFlight.size() >= Options.MaxInFlightPerConnection) {
    ResultFrame R;
    R.RequestId = Req.RequestId;
    R.Code = ResponseCode::RetryLater;
    R.BackoffMs = suggestedBackoffMs();
    R.Diagnostic = "per-connection in-flight limit reached";
    sendResult(C, R);
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Stats.Shed;
    return;
  }

  core::CompileRequest Job;
  if (Req.Source == FormulaSource::Satlib) {
    Job.Formula = sat::satlibInstance(Req.NumVars, Req.Index);
  } else {
    auto Parsed = sat::parseDimacs(Req.Dimacs);
    if (!Parsed) {
      // The frame was well-formed; the formula inside it was not. A
      // request-level failure, not a connection-level one.
      ResultFrame R;
      R.RequestId = Req.RequestId;
      R.Code = ResponseCode::Failed;
      R.Diagnostic = Parsed.message();
      sendResult(C, R);
      return;
    }
    Job.Formula = Parsed.take();
  }
  Job.Kind = Req.Kind;
  Job.Qaoa.Gamma = Req.Gamma;
  Job.Qaoa.Beta = Req.Beta;
  Job.Qaoa.Layers = Req.Layers;
  Job.Qaoa.Measure = Req.Measure;
  Job.Qaoa.UseCompressedClauses = Req.Compressed;
  Job.Priority = Req.Priority;
  Job.DeadlineSeconds = Req.DeadlineMs / 1000.0;

  uint64_t ConnId = C.Conn.id();
  uint64_t RequestId = Req.RequestId;
  auto Cb = [this, ConnId, RequestId](const core::JobOutcome &Outcome) {
    {
      std::lock_guard<std::mutex> Lock(CompletionMutex);
      Completions.push_back({ConnId, RequestId, Outcome});
    }
    if (Wake)
      Wake->notify();
  };

  core::CompileService::JobHandle Handle;
  switch (Service.trySubmit(std::move(Job), Handle, std::move(Cb))) {
  case core::CompileService::SubmitStatus::Accepted:
  case core::CompileService::SubmitStatus::Coalesced: {
    C.InFlight.emplace(RequestId, std::move(Handle));
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Stats.RequestsAdmitted;
    return;
  }
  case core::CompileService::SubmitStatus::QueueFull: {
    ResultFrame R;
    R.RequestId = RequestId;
    R.Code = ResponseCode::RetryLater;
    R.BackoffMs = suggestedBackoffMs();
    R.Diagnostic = "job queue full";
    sendResult(C, R);
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Stats.Shed;
    return;
  }
  case core::CompileService::SubmitStatus::ShutDown: {
    ResultFrame R;
    R.RequestId = RequestId;
    R.Code = ResponseCode::GoingAway;
    R.Diagnostic = "service shut down";
    sendResult(C, R);
    return;
  }
  }
}

bool Server::handleFrame(Client &C, const Frame &F) {
  switch (F.Type) {
  case FrameType::CompileRequest:
    handleCompile(C, F);
    return true;
  case FrameType::CancelRequest: {
    auto Decoded = decodeCancel(F.Payload);
    if (!Decoded)
      break;
    auto It = C.InFlight.find(Decoded->RequestId);
    // Unknown ids are not an error: the result may have just been sent.
    if (It != C.InFlight.end())
      It->second.cancel();
    return true;
  }
  case FrameType::StatsRequest:
    queueOrDrop(C, encodeStats(buildStats()));
    return true;
  case FrameType::Ping:
    queueOrDrop(C, encodePong());
    return true;
  default:
    break; // server->client frame types are malformed as requests
  }
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Stats.MalformedFrames;
  }
  ErrorFrame E;
  E.Code = ResponseCode::Malformed;
  E.Message = std::string("unexpected frame type: ") + frameTypeName(F.Type);
  queueOrDrop(C, encodeError(E));
  return false;
}

void Server::acceptPending() {
  // Accept in bounded batches so a connection storm cannot starve the
  // clients already being served.
  for (int Burst = 0; Burst < 32; ++Burst) {
    if (Clients.size() >= Options.MaxConnections)
      return;
    auto Accepted = tcpAccept(ListenFd.get());
    if (!Accepted || !Accepted->valid())
      return;
    if (Faults.enabled() && Faults.shouldKill()) {
      // Injected accept-time kill: the client sees an immediate close.
      std::lock_guard<std::mutex> Lock(StatsMutex);
      ++Stats.InjectedKills;
      continue;
    }
    setNoDelay(Accepted->get());
    Clients.push_back(std::make_unique<Client>(
        Connection(Accepted.take(), NextConnId++, MaxRequestFrameBytes,
                   Options.MaxWriteQueueBytes)));
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Stats.Accepted;
  }
}

void Server::drainCompletions() {
  std::vector<Completion> Batch;
  {
    std::lock_guard<std::mutex> Lock(CompletionMutex);
    Batch.swap(Completions);
  }
  for (Completion &Done : Batch) {
    Client *C = nullptr;
    for (auto &Candidate : Clients)
      if (Candidate->Conn.id() == Done.ConnId) {
        C = Candidate.get();
        break;
      }
    if (!C) {
      std::lock_guard<std::mutex> Lock(StatsMutex);
      ++Stats.OrphanedResults;
      continue;
    }
    C->InFlight.erase(Done.RequestId);
    sendResult(*C, resultFromOutcome(Done.RequestId, Done.Outcome));
  }
}

void Server::beginDrain() {
  Draining = true;
  DrainStartedAt = Connection::Clock::now();
  ListenFd.reset(); // stop accepting; pending SYNs get RST once closed
  Service.armDrainDeadline(Options.DrainBudgetSeconds);
  for (auto &C : Clients) {
    if (C->Conn.SentGoingAway)
      continue;
    C->Conn.SentGoingAway = true;
    queueOrDrop(*C, encodeGoingAway("server is draining"));
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Stats.GoingAwaySent;
  }
}

Status Server::run() {
  if (!ListenFd.valid() || !Wake)
    return Status::error("server not started: call start() first");

  // True when the previous cycle hit a connection's fairness quantum
  // with complete frames still buffered in its parser.
  bool BufferedBacklog = false;
  while (true) {
    if (!Draining && (StopRequested.load(std::memory_order_relaxed) ||
                      (Options.StopFlag && *Options.StopFlag)))
      beginDrain();

    // -- Build the poll set ------------------------------------------------
    std::vector<pollfd> Fds;
    Fds.push_back({Wake->fd(), POLLIN, 0});
    size_t ListenIdx = SIZE_MAX;
    if (!Draining && ListenFd.valid() &&
        Clients.size() < Options.MaxConnections) {
      ListenIdx = Fds.size();
      Fds.push_back({ListenFd.get(), POLLIN, 0});
    }
    size_t ClientBase = Fds.size();
    // Only these clients have a pollfd this cycle; acceptPending() below
    // may append more, and indexing Fds for those would run past its end.
    size_t NumPolled = Clients.size();
    for (auto &C : Clients) {
      short Events = POLLIN;
      if (C->Conn.writePending())
        Events |= POLLOUT;
      Fds.push_back({C->Conn.fd(), Events, 0});
    }

    // Short timeout: the idle/stall/drain timers need periodic service
    // even with no socket activity. A cycle that hit a connection's
    // fairness quantum leaves complete frames buffered, so the next
    // cycle must not sleep on them.
    int Ready = ::poll(Fds.data(), static_cast<nfds_t>(Fds.size()),
                       BufferedBacklog ? 0 : 100);
    BufferedBacklog = false;
    if (Ready < 0 && errno != EINTR)
      return Status::error("poll failed on the server loop");

    if (Fds[0].revents & POLLIN)
      Wake->drain();
    drainCompletions();

    if (ListenIdx != SIZE_MAX && (Fds[ListenIdx].revents & POLLIN))
      acceptPending();

    // -- Service connections in rotating order -----------------------------
    // Clients accepted this cycle (index >= NumPolled) have no pollfd
    // entry yet; they are serviced from the next cycle on.
    Connection::Clock::time_point Now = Connection::Clock::now();
    for (size_t K = 0; K < NumPolled; ++K) {
      size_t Idx = (RotateStart + K) % NumPolled;
      Client &C = *Clients[Idx];
      short Revents = Fds[ClientBase + Idx].revents;
      if (C.Dead)
        continue;
      if ((Revents & (POLLERR | POLLNVAL)) ||
          ((Revents & POLLHUP) && !(Revents & POLLIN))) {
        C.Dead = true;
        continue;
      }
      if (Revents & POLLIN) {
        if (Faults.enabled() && Faults.shouldKill()) {
          C.Dead = true;
          std::lock_guard<std::mutex> Lock(StatsMutex);
          ++Stats.InjectedKills;
          continue;
        }
        Connection::ReadOutcome RO = C.Conn.readAndParse(Faults);
        if (RO == Connection::ReadOutcome::Closed) {
          C.Dead = true;
          continue;
        }
        if (RO == Connection::ReadOutcome::Poisoned) {
          // Framing is lost; nothing further on this stream can be
          // trusted, including a goodbye frame.
          C.Dead = true;
          std::lock_guard<std::mutex> Lock(StatsMutex);
          ++Stats.PoisonedStreams;
          continue;
        }
      }
      // Process buffered frames whether or not new bytes arrived: a
      // pipelined burst can out-run the fairness quantum, and the
      // leftover complete frames must not wait for the client to send
      // more before they are served.
      Frame F;
      size_t Processed = 0;
      while (!C.Conn.CloseAfterFlush && Processed < Options.MaxFramesPerPoll &&
             C.Conn.nextFrame(F)) {
        ++Processed;
        {
          std::lock_guard<std::mutex> Lock(StatsMutex);
          ++Stats.FramesIn;
        }
        if (!handleFrame(C, F)) {
          C.Conn.CloseAfterFlush = true;
          break;
        }
      }
      // Quantum exhausted: more complete frames may remain buffered, so
      // the next poll must not sleep on them.
      if (Processed == Options.MaxFramesPerPoll)
        BufferedBacklog = true;
      // A valid frame can precede a hostile length prefix in the same
      // read; next() surfaces that poison only after consuming the
      // valid ones, so re-check before waiting on more bytes.
      if (C.Conn.poisoned()) {
        C.Dead = true;
        std::lock_guard<std::mutex> Lock(StatsMutex);
        ++Stats.PoisonedStreams;
        continue;
      }
      if (!C.Dead && C.Conn.writePending()) {
        if (C.Conn.flushWrites(Faults) == IoResult::Error) {
          C.Dead = true;
          continue;
        }
      }
      // -- Robustness timers ----------------------------------------------
      if (C.Conn.writePending() &&
          C.Conn.secondsSinceWriteProgress(Now) > Options.WriteStallSeconds) {
        C.Dead = true;
        std::lock_guard<std::mutex> Lock(StatsMutex);
        ++Stats.SlowClientDrops;
        continue;
      }
      if (C.Conn.hasPartialFrame() &&
          C.Conn.secondsSinceRead(Now) > Options.PartialFrameSeconds) {
        C.Dead = true;
        std::lock_guard<std::mutex> Lock(StatsMutex);
        ++Stats.IdleDrops;
        continue;
      }
      if (C.InFlight.empty() && !C.Conn.writePending() &&
          C.Conn.secondsSinceRead(Now) > Options.ReadIdleSeconds) {
        C.Dead = true;
        std::lock_guard<std::mutex> Lock(StatsMutex);
        ++Stats.IdleDrops;
        continue;
      }
      if (C.Conn.CloseAfterFlush && !C.Conn.writePending())
        C.Dead = true;
      // Draining: once a connection has nothing left in flight and its
      // responses are flushed, it is done.
      if (Draining && C.InFlight.empty() && !C.Conn.writePending())
        C.Dead = true;
    }
    if (NumPolled > 0)
      RotateStart = (RotateStart + 1) % NumPolled;

    // -- Drain budget failsafe ---------------------------------------------
    if (Draining) {
      double Elapsed =
          std::chrono::duration<double>(Now - DrainStartedAt).count();
      if (Elapsed > Options.DrainBudgetSeconds +
                        Options.DrainFlushSlackSeconds) {
        // Budget and slack exhausted: force-close whatever is left. The
        // jobs themselves were already deadline-armed and resolve inside
        // the service; their results are simply undeliverable.
        for (auto &C : Clients)
          C->Dead = true;
      }
    }

    // -- Remove dead connections ------------------------------------------
    size_t Removed = 0;
    for (auto It = Clients.begin(); It != Clients.end();) {
      if (!(*It)->Dead) {
        ++It;
        continue;
      }
      // Votes from a departed client free its queue slots early; jobs
      // shared with other clients keep running (votes are per handle).
      for (auto &Entry : (*It)->InFlight)
        Entry.second.cancel();
      It = Clients.erase(It);
      ++Removed;
    }
    if (Removed > 0) {
      RotateStart = 0;
      std::lock_guard<std::mutex> Lock(StatsMutex);
      Stats.Disconnected += Removed;
    }

    if (Draining && Clients.empty())
      break;
  }

  // Everything transport-side is torn down; drain the service itself.
  // With a cache file configured this is what persists the snapshot.
  Service.shutdown(/*Drain=*/true);
  drainCompletions(); // late resolutions are orphans, but must not leak
  return Status::success();
}
