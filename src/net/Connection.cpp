//===- net/Connection.cpp - Per-connection transport state ---------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "net/Connection.h"

using namespace weaver;
using namespace weaver::net;

Connection::ReadOutcome Connection::readAndParse(FaultInjector &Faults) {
  if (Faults.enabled() && Faults.shouldDelayRead())
    return ReadOutcome::NoData;

  char Buf[16384];
  bool Progress = false;
  // Bounded gulp: at most a few reads per poll cycle, so one firehose
  // client cannot monopolize the loop.
  for (int Gulp = 0; Gulp < 4; ++Gulp) {
    size_t NumRead = 0;
    IoResult R = readSome(Socket.get(), Buf, sizeof(Buf), NumRead);
    if (R == IoResult::Closed || R == IoResult::Error)
      return Progress ? ReadOutcome::Progress : ReadOutcome::Closed;
    if (R == IoResult::WouldBlock)
      break;
    size_t Kept = Faults.enabled() ? Faults.clampRead(NumRead) : NumRead;
    if (Kept > 0) {
      if (!Parser.feed(Buf, Kept))
        return ReadOutcome::Poisoned;
      Progress = true;
    }
    if (NumRead < sizeof(Buf))
      break;
  }
  if (!Progress)
    return ReadOutcome::NoData;
  LastReadAt = Clock::now();
  if (Parser.poisoned())
    return ReadOutcome::Poisoned;
  return ReadOutcome::Progress;
}

bool Connection::queueWrite(const std::string &Bytes) {
  if (writeQueueBytes() + Bytes.size() > MaxWriteQueueBytes)
    return false;
  // Compact the flushed prefix before growing the buffer.
  if (WriteOff > 65536 && WriteOff >= WriteBuf.size() / 2) {
    WriteBuf.erase(0, WriteOff);
    WriteOff = 0;
  }
  WriteBuf += Bytes;
  return true;
}

IoResult Connection::flushWrites(FaultInjector &Faults) {
  while (writePending()) {
    size_t Len = WriteBuf.size() - WriteOff;
    if (Faults.enabled())
      Len = Faults.clampWrite(Len);
    size_t NumWritten = 0;
    IoResult R =
        writeSome(Socket.get(), WriteBuf.data() + WriteOff, Len, NumWritten);
    if (R == IoResult::Error || R == IoResult::Closed)
      return IoResult::Error;
    if (R == IoResult::WouldBlock)
      return IoResult::Ok;
    WriteOff += NumWritten;
    LastWriteProgressAt = Clock::now();
    // A fault-clamped short write yields the loop so the injected
    // fragmentation is visible to the peer as separate TCP segments.
    if (Faults.enabled() && NumWritten == Len)
      return IoResult::Ok;
  }
  return IoResult::Ok;
}
