//===- net/Client.cpp - Frame-protocol client with retry -----------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "net/Client.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

using namespace weaver;
using namespace weaver::net;

double Client::backoffSeconds(int Attempt) {
  double Base = Options.InitialBackoffSeconds *
                std::pow(2.0, std::min(Attempt, 20));
  Base = std::min(Base, Options.MaxBackoffSeconds);
  // Uniform jitter in [0.5, 1.0): desynchronises retrying clients
  // without ever collapsing the wait to zero.
  return Base * (0.5 + 0.5 * Rng.nextDouble());
}

Status Client::connect() {
  close();
  Parser = FrameParser(MaxResponseFrameBytes);
  std::string LastError = "no connect attempts made";
  for (int Attempt = 0; Attempt < std::max(1, Options.MaxConnectAttempts);
       ++Attempt) {
    if (Attempt > 0)
      std::this_thread::sleep_for(
          std::chrono::duration<double>(backoffSeconds(Attempt - 1)));
    auto Sock = tcpConnect(Options.Host, Options.Port);
    if (Sock) {
      Socket = Sock.take();
      setNoDelay(Socket.get());
      return Status::success();
    }
    LastError = Sock.message();
  }
  return Status::error("connect failed after " +
                       std::to_string(std::max(1, Options.MaxConnectAttempts)) +
                       " attempts: " + LastError);
}

Status Client::sendBytes(const std::string &Bytes) {
  if (!connected())
    return Status::error("client is not connected");
  using Clock = std::chrono::steady_clock;
  Clock::time_point Deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(Options.IoTimeoutSeconds));
  size_t Off = 0;
  while (Off < Bytes.size()) {
    size_t NumWritten = 0;
    IoResult R = writeSome(Socket.get(), Bytes.data() + Off,
                           Bytes.size() - Off, NumWritten);
    if (R == IoResult::Error || R == IoResult::Closed) {
      close();
      return Status::error("connection lost while sending");
    }
    if (R == IoResult::Ok) {
      Off += NumWritten;
      continue;
    }
    double Left =
        std::chrono::duration<double>(Deadline - Clock::now()).count();
    if (Left <= 0)
      return Status::error("send timed out");
    int Wait = std::max(1, static_cast<int>(std::min(Left * 1000, 1000.0)));
    pollOne(Socket.get(), /*WantWrite=*/true, Wait);
  }
  return Status::success();
}

bool Client::tryReadFrame(Frame &Out) {
  if (Parser.next(Out))
    return true;
  if (!connected())
    return false;
  char Buf[16384];
  while (true) {
    size_t NumRead = 0;
    IoResult R = readSome(Socket.get(), Buf, sizeof(Buf), NumRead);
    if (R == IoResult::Closed || R == IoResult::Error) {
      close();
      return false;
    }
    if (R == IoResult::WouldBlock)
      return false;
    if (!Parser.feed(Buf, NumRead)) {
      close();
      return false;
    }
    if (Parser.next(Out))
      return true;
  }
}

Expected<Frame> Client::readFrame(double TimeoutSeconds) {
  if (TimeoutSeconds <= 0)
    TimeoutSeconds = Options.IoTimeoutSeconds;
  using Clock = std::chrono::steady_clock;
  Clock::time_point Deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(TimeoutSeconds));
  Frame F;
  while (true) {
    if (tryReadFrame(F))
      return F;
    if (!connected())
      return Expected<Frame>::error(Parser.poisoned()
                                        ? "response framing corrupt"
                                        : "connection closed by server");
    double Left =
        std::chrono::duration<double>(Deadline - Clock::now()).count();
    if (Left <= 0)
      return Expected<Frame>::error("timed out waiting for a frame");
    int Wait = std::max(1, static_cast<int>(std::min(Left * 1000, 1000.0)));
    pollOne(Socket.get(), /*WantWrite=*/false, Wait);
  }
}

Expected<ResultFrame> Client::compileSync(const CompileFrame &F,
                                          int MaxAttempts) {
  for (int Attempt = 0; Attempt < std::max(1, MaxAttempts); ++Attempt) {
    if (Status S = sendCompile(F))
      return Expected<ResultFrame>::error(S.message());
    // Skip unsolicited frames (pongs, going-away notices) until this
    // request's result arrives.
    while (true) {
      auto Received = readFrame();
      if (!Received)
        return Received.status();
      if (Received->Type == FrameType::Error) {
        auto E = decodeError(Received->Payload);
        return Expected<ResultFrame>::error(
            E ? "server rejected request: " + E->Message
              : "server sent an undecodable error frame");
      }
      if (Received->Type != FrameType::Result)
        continue;
      auto R = decodeResult(Received->Payload);
      if (!R)
        return R.status();
      if (R->RequestId != F.RequestId)
        continue; // stale result from an earlier pipelined request
      if (R->Code != ResponseCode::RetryLater)
        return R;
      // Shed: honour the server's backoff hint (jittered client-side so
      // shed cohorts do not resubmit as one thundering herd).
      double SuggestedSeconds = R->BackoffMs / 1000.0;
      double Wait = std::max(SuggestedSeconds * (0.5 + 0.5 * Rng.nextDouble()),
                             0.001);
      std::this_thread::sleep_for(std::chrono::duration<double>(Wait));
      break;
    }
  }
  return Expected<ResultFrame>::error(
      "request shed " + std::to_string(std::max(1, MaxAttempts)) +
      " times; giving up");
}

Expected<StatsFrame> Client::stats() {
  if (Status S = sendStatsRequest())
    return Expected<StatsFrame>::error(S.message());
  while (true) {
    auto Received = readFrame();
    if (!Received)
      return Received.status();
    if (Received->Type != FrameType::Stats)
      continue;
    return decodeStats(Received->Payload);
  }
}
