//===- net/FaultInjector.h - Deterministic transport faults ----*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Probabilistic transport-fault injection for robustness testing. The
/// server consults one FaultInjector from its poll loop (single-threaded,
/// no locking) at well-defined points: after accepting a connection,
/// before each write, and after each read. Faults are driven by a seeded
/// Xoshiro256 stream, so a given (seed, request schedule) reproduces the
/// same kill/truncate decisions — CI runs fixed seeds and asserts the
/// exact same survivor set every time.
///
/// Disabled (the default, all probabilities zero) the injector is a
/// handful of predictable branches; production builds pay nothing.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_NET_FAULTINJECTOR_H
#define WEAVER_NET_FAULTINJECTOR_H

#include "support/Rng.h"
#include "support/Status.h"

#include <cstdint>
#include <string>

namespace weaver {
namespace net {

/// Fault probabilities; all zero means no injection.
struct FaultConfig {
  uint64_t Seed = 0;
  double KillProb = 0;         ///< abruptly close the connection
  double PartialWriteProb = 0; ///< truncate one write() to a prefix
  double DelayReadProb = 0;    ///< pretend a read returned no data
  double TruncateProb = 0;     ///< drop bytes from a read (corrupts framing)

  bool enabled() const {
    return KillProb > 0 || PartialWriteProb > 0 || DelayReadProb > 0 ||
           TruncateProb > 0;
  }
};

/// Parses "seed=7,kill=0.02,partial=0.3,delay=0.2,truncate=0.01".
/// Unknown keys, bad numbers, and probabilities outside [0, 1] are
/// errors (the injector exists to harden parsing; it must not itself
/// accept garbage).
Expected<FaultConfig> parseFaultConfig(std::string_view Spec);

/// Counters of injected faults, for logging and test assertions.
struct FaultStats {
  uint64_t Kills = 0;
  uint64_t PartialWrites = 0;
  uint64_t DelayedReads = 0;
  uint64_t TruncatedReads = 0;
};

class FaultInjector {
public:
  explicit FaultInjector(const FaultConfig &Config = FaultConfig())
      : Config(Config), Rng(Config.Seed) {}

  bool enabled() const { return Config.enabled(); }

  /// Should this connection be killed right now?
  bool shouldKill() {
    if (roll(Config.KillProb)) {
      ++Stats.Kills;
      return true;
    }
    return false;
  }

  /// Clamps \p WriteLen for one write; returns a strict prefix length
  /// (>= 1 so progress is still made, the slow path not a livelock).
  size_t clampWrite(size_t WriteLen) {
    if (WriteLen > 1 && roll(Config.PartialWriteProb)) {
      ++Stats.PartialWrites;
      return 1 + Rng.nextBelow(WriteLen - 1);
    }
    return WriteLen;
  }

  /// Should this read be deferred to a later poll cycle?
  bool shouldDelayRead() {
    if (roll(Config.DelayReadProb)) {
      ++Stats.DelayedReads;
      return true;
    }
    return false;
  }

  /// Clamps \p ReadLen, dropping a suffix of the received bytes. The
  /// dropped bytes are gone — framing on that connection is corrupt and
  /// the server must detect it (poisoned parser or read-idle timeout).
  size_t clampRead(size_t ReadLen) {
    if (ReadLen > 0 && roll(Config.TruncateProb)) {
      ++Stats.TruncatedReads;
      return Rng.nextBelow(ReadLen);
    }
    return ReadLen;
  }

  const FaultStats &stats() const { return Stats; }

private:
  bool roll(double Prob) {
    return Prob > 0 && Rng.nextDouble() < Prob;
  }

  FaultConfig Config;
  Xoshiro256 Rng;
  FaultStats Stats;
};

} // namespace net
} // namespace weaver

#endif // WEAVER_NET_FAULTINJECTOR_H
