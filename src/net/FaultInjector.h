//===- net/FaultInjector.h - Deterministic transport faults ----*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Probabilistic transport-fault injection for robustness testing. The
/// server consults one FaultInjector from its poll loop (single-threaded)
/// at well-defined points: after accepting a connection, before each
/// write, and after each read.
///
/// The decisions come from the shared support::FaultInjection framework:
/// each transport fault is a named site on a seeded engine —
///
///   net.kill           abruptly close the connection
///   net.write.partial  truncate one write() to a prefix
///   net.read.delay     pretend a read returned no data
///   net.read.truncate  drop a suffix of a read (corrupts framing)
///
/// A FaultConfig (the `--faults seed=7,partial=0.3,...` surface the serve
/// daemon and tests already speak) compiles down to per-site probability
/// schedules on a private engine, so a given (seed, request schedule)
/// reproduces the same decisions. When no FaultConfig is set, the
/// injector falls through to the process-global engine — one WEAVER_FAULTS
/// seed then drives disk, service, pipeline, and transport faults alike.
///
/// Disabled on both paths (the default), the injector costs a couple of
/// predictable branches; production builds pay nothing.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_NET_FAULTINJECTOR_H
#define WEAVER_NET_FAULTINJECTOR_H

#include "support/FaultInjection.h"
#include "support/Status.h"

#include <cstdint>
#include <string>

namespace weaver {
namespace net {

/// Fault probabilities; all zero means no injection.
struct FaultConfig {
  uint64_t Seed = 0;
  double KillProb = 0;         ///< abruptly close the connection
  double PartialWriteProb = 0; ///< truncate one write() to a prefix
  double DelayReadProb = 0;    ///< pretend a read returned no data
  double TruncateProb = 0;     ///< drop bytes from a read (corrupts framing)

  bool enabled() const {
    return KillProb > 0 || PartialWriteProb > 0 || DelayReadProb > 0 ||
           TruncateProb > 0;
  }
};

/// Parses "seed=7,kill=0.02,partial=0.3,delay=0.2,truncate=0.01".
/// Unknown keys, bad numbers, and probabilities outside [0, 1] are
/// errors (the injector exists to harden parsing; it must not itself
/// accept garbage).
Expected<FaultConfig> parseFaultConfig(std::string_view Spec);

/// Counters of injected faults, for logging and test assertions.
struct FaultStats {
  uint64_t Kills = 0;
  uint64_t PartialWrites = 0;
  uint64_t DelayedReads = 0;
  uint64_t TruncatedReads = 0;
};

class FaultInjector {
public:
  explicit FaultInjector(const FaultConfig &Config = FaultConfig());

  /// True when either this injector's own config or the process-global
  /// fault engine is active (the global path lets one WEAVER_FAULTS spec
  /// reach the transport without any --faults flag).
  bool enabled() const { return Own.enabled() || fault::enabled(); }

  /// Should this connection be killed right now?
  bool shouldKill() {
    if (decide("net.kill")) {
      ++Stats.Kills;
      return true;
    }
    return false;
  }

  /// Clamps \p WriteLen for one write; returns a strict prefix length
  /// (>= 1 so progress is still made, the slow path not a livelock).
  size_t clampWrite(size_t WriteLen) {
    size_t Kept = clamp("net.write.partial", WriteLen, 1);
    if (Kept < WriteLen)
      ++Stats.PartialWrites;
    return Kept;
  }

  /// Should this read be deferred to a later poll cycle?
  bool shouldDelayRead() {
    if (decide("net.read.delay")) {
      ++Stats.DelayedReads;
      return true;
    }
    return false;
  }

  /// Clamps \p ReadLen, dropping a suffix of the received bytes. The
  /// dropped bytes are gone — framing on that connection is corrupt and
  /// the server must detect it (poisoned parser or read-idle timeout).
  size_t clampRead(size_t ReadLen) {
    size_t Kept = clamp("net.read.truncate", ReadLen, 0);
    if (Kept < ReadLen)
      ++Stats.TruncatedReads;
    return Kept;
  }

  const FaultStats &stats() const { return Stats; }

private:
  bool decide(const char *Site) {
    return Own.enabled() ? Own.decide(Site).Fire : fault::fire(Site);
  }
  size_t clamp(const char *Site, size_t Len, size_t Lo) {
    return Own.enabled() ? Own.clampLen(Site, Len, Lo)
                         : fault::clampLen(Site, Len, Lo);
  }

  fault::Engine Own; ///< built from the FaultConfig; empty = use global
  FaultStats Stats;
};

} // namespace net
} // namespace weaver

#endif // WEAVER_NET_FAULTINJECTOR_H
