//===- net/Server.h - Socket transport for CompileService ------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fault-tolerant TCP front end for core::CompileService: many
/// concurrent clients multiplexed onto the service's bounded priority
/// queue through the net::Protocol frame codec. The design goal is that
/// no client behaviour — slow, dead, hostile, or merely unlucky — can
/// stall compilation for the others:
///
///  * Single-threaded poll(2) loop owns every socket; compile work runs
///    on the service's worker pool, which reports completions through a
///    mutex-guarded queue plus a self-pipe wakeup. No socket I/O ever
///    happens on a worker thread, and the poll loop never blocks on the
///    job queue (trySubmit, never submit).
///  * Admission control: a full job queue sheds the request with
///    RETRYING_LATER plus a suggested backoff scaled by queue depth;
///    per-connection in-flight caps stop one client from occupying the
///    whole queue; connections are serviced in rotating order with a
///    frames-per-poll cap, so request fairness does not depend on fd
///    order.
///  * Deadlines: a request's DeadlineMs is armed on the job's
///    CancelToken at admission; expiry — queued or between passes —
///    resolves the job as DEADLINE_EXCEEDED without blocking a worker.
///  * Robustness timeouts: read-idle connections are dropped, a
///    half-received frame has a tighter deadline than an idle socket
///    (slowloris), and a write queue past its byte cap disconnects the
///    slow reader.
///  * Graceful drain: requestStop() (signal-safe via the wake pipe)
///    stops accepting, tells idle clients GOING_AWAY, arms the service
///    drain budget so stragglers cancel as DEADLINE_EXCEEDED, flushes
///    every pending result, and only then shuts the service down — which
///    persists the PassCache snapshot when one is configured.
///  * Fault injection: a seeded net::FaultInjector can kill accepts,
///    truncate reads, and fragment writes, exercising every recovery
///    path above deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_NET_SERVER_H
#define WEAVER_NET_SERVER_H

#include "core/service/CompileService.h"
#include "net/Connection.h"
#include "net/FaultInjector.h"
#include "net/Protocol.h"
#include "support/Socket.h"

#include <atomic>
#include <csignal>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace weaver {
namespace net {

struct ServerOptions {
  std::string BindAddress = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back via Server::port().
  uint16_t Port = 0;
  int Backlog = 128;
  /// Hard cap on concurrent connections; accepts beyond it are closed
  /// immediately (the kernel backlog absorbs bursts).
  size_t MaxConnections = 1024;
  /// In-flight compile requests per connection; excess requests are shed
  /// with RETRYING_LATER.
  size_t MaxInFlightPerConnection = 64;
  /// Write-queue byte cap per connection; a slower reader is dropped.
  size_t MaxWriteQueueBytes = 256u << 20;
  /// Frames processed per connection per poll cycle (fairness quantum).
  size_t MaxFramesPerPoll = 16;
  /// Disconnect after this long with no bytes from the client.
  double ReadIdleSeconds = 300;
  /// Tighter limit while a frame is partially received (anti-slowloris).
  double PartialFrameSeconds = 30;
  /// Disconnect when the write queue is non-empty but the client has
  /// accepted no bytes for this long.
  double WriteStallSeconds = 30;
  /// Drain budget: on requestStop(), live jobs get this many seconds to
  /// finish before their tokens expire as deadline-exceeded.
  double DrainBudgetSeconds = 10;
  /// After the budget, connections get this much longer to flush results
  /// before being closed forcibly.
  double DrainFlushSlackSeconds = 5;
  FaultConfig Faults;
  core::ServiceOptions Service;
  /// Optional signal-handler flag: the poll loop treats a non-zero value
  /// exactly like requestStop(). Point it at a sig_atomic_t your SIGTERM
  /// handler sets.
  const volatile std::sig_atomic_t *StopFlag = nullptr;
};

/// Transport-level counters (poll thread writes, any thread reads via
/// transportStats()).
struct TransportStats {
  uint64_t Accepted = 0;
  uint64_t Disconnected = 0;
  uint64_t FramesIn = 0;
  uint64_t FramesOut = 0;
  uint64_t RequestsAdmitted = 0;
  uint64_t ResultsSent = 0;
  uint64_t Shed = 0;             ///< RETRYING_LATER responses
  uint64_t MalformedFrames = 0;  ///< decode/validation failures
  uint64_t PoisonedStreams = 0;  ///< framing lost (bad length prefix)
  uint64_t SlowClientDrops = 0;  ///< write-queue overflow / write stall
  uint64_t IdleDrops = 0;        ///< read-idle / half-frame timeouts
  uint64_t InjectedKills = 0;    ///< fault injector closed the connection
  uint64_t OrphanedResults = 0;  ///< job resolved after its client left
  uint64_t GoingAwaySent = 0;
};

class Server {
public:
  explicit Server(ServerOptions Options);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds the listen socket and wake pipe. port() is valid afterwards.
  Status start();

  /// Runs the poll loop on the calling thread until a stop is requested
  /// and the drain completes. Returns the first fatal transport error,
  /// or success after a clean drain.
  Status run();

  /// Requests a graceful drain; safe from any thread. (From a signal
  /// handler, prefer wiring ServerOptions::StopFlag instead: requestStop
  /// takes no locks but is not formally async-signal-safe.)
  void requestStop();

  uint16_t port() const { return BoundPort; }
  TransportStats transportStats() const;
  const FaultStats &faultStats() const { return Faults.stats(); }
  core::CompileService &service() { return Service; }

private:
  struct Client {
    explicit Client(Connection Conn) : Conn(std::move(Conn)) {}
    Connection Conn;
    /// Client request id -> handle, for cancel frames and drain tracking.
    std::map<uint64_t, core::CompileService::JobHandle> InFlight;
    /// Marked for removal at the end of the current poll cycle.
    bool Dead = false;
  };

  /// One resolved job travelling from a worker thread to the poll loop.
  struct Completion {
    uint64_t ConnId = 0;
    uint64_t RequestId = 0;
    core::JobOutcome Outcome;
  };

  void acceptPending();
  void drainCompletions();
  /// Handles one parsed frame; returns false when the connection must
  /// close (malformed input).
  bool handleFrame(Client &C, const Frame &F);
  void handleCompile(Client &C, const Frame &F);
  StatsFrame buildStats();
  void beginDrain();
  void sendResult(Client &C, const ResultFrame &R);
  /// Queues bytes on \p C, or marks it for disconnect on overflow.
  void queueOrDrop(Client &C, const std::string &Bytes);
  uint32_t suggestedBackoffMs() const;
  static ResultFrame resultFromOutcome(uint64_t RequestId,
                                       const core::JobOutcome &Outcome);

  ServerOptions Options;
  FdHandle ListenFd;
  uint16_t BoundPort = 0;
  std::unique_ptr<WakePipe> Wake;
  FaultInjector Faults;

  std::vector<std::unique_ptr<Client>> Clients;
  uint64_t NextConnId = 1;
  size_t RotateStart = 0; ///< rotating fairness offset into Clients

  std::atomic<bool> StopRequested{false};
  bool Draining = false;
  Connection::Clock::time_point DrainStartedAt;

  mutable std::mutex CompletionMutex;
  std::vector<Completion> Completions;

  mutable std::mutex StatsMutex;
  TransportStats Stats;

  /// Declared last: its destructor joins the workers, whose completion
  /// callbacks touch CompletionMutex/Completions above.
  core::CompileService Service;
};

} // namespace net
} // namespace weaver

#endif // WEAVER_NET_SERVER_H
