//===- net/FaultInjector.cpp - Deterministic transport faults ------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "net/FaultInjector.h"

#include "support/StringUtils.h"

using namespace weaver;
using namespace weaver::net;

FaultInjector::FaultInjector(const FaultConfig &Config) {
  if (!Config.enabled())
    return; // leave Own empty: decisions fall through to the global engine
  fault::Config EC;
  EC.Seed = Config.Seed;
  auto AddSite = [&EC](const char *Pattern, double Prob) {
    if (Prob <= 0)
      return;
    fault::SiteSpec S;
    S.Pattern = Pattern;
    S.Probability = Prob;
    EC.Sites.push_back(std::move(S));
  };
  AddSite("net.kill", Config.KillProb);
  AddSite("net.write.partial", Config.PartialWriteProb);
  AddSite("net.read.delay", Config.DelayReadProb);
  AddSite("net.read.truncate", Config.TruncateProb);
  Own.configure(std::move(EC));
}

Expected<FaultConfig> net::parseFaultConfig(std::string_view Spec) {
  using EC = Expected<FaultConfig>;
  FaultConfig Config;
  if (trim(Spec).empty())
    return Config;
  for (std::string_view Item : split(Spec, ',')) {
    auto Eq = Item.find('=');
    if (Eq == std::string_view::npos)
      return EC::error("malformed fault spec item '" + std::string(Item) +
                       "' (expected key=value)");
    std::string_view Key = trim(Item.substr(0, Eq));
    std::string_view Value = trim(Item.substr(Eq + 1));
    if (Key == "seed") {
      auto Seed = parseBoundedInt(Value, 0, INT64_MAX);
      if (!Seed)
        return EC::error("invalid fault seed: " + Seed.message());
      Config.Seed = static_cast<uint64_t>(*Seed);
      continue;
    }
    auto Prob = parseFiniteDouble(Value);
    if (!Prob)
      return EC::error("invalid fault probability for '" + std::string(Key) +
                       "': " + Prob.message());
    if (*Prob < 0 || *Prob > 1)
      return EC::error("fault probability for '" + std::string(Key) +
                       "' outside [0, 1]");
    if (Key == "kill")
      Config.KillProb = *Prob;
    else if (Key == "partial")
      Config.PartialWriteProb = *Prob;
    else if (Key == "delay")
      Config.DelayReadProb = *Prob;
    else if (Key == "truncate")
      Config.TruncateProb = *Prob;
    else
      return EC::error("unknown fault spec key: '" + std::string(Key) + "'");
  }
  return Config;
}
