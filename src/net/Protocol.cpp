//===- net/Protocol.cpp - Length-prefixed wire protocol ------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "net/Protocol.h"

#include "support/BinaryIO.h"
#include "support/StringUtils.h"

#include <cmath>
#include <cstring>

using namespace weaver;
using namespace weaver::net;

const char *net::frameTypeName(FrameType Type) {
  switch (Type) {
  case FrameType::CompileRequest:
    return "compile";
  case FrameType::CancelRequest:
    return "cancel";
  case FrameType::StatsRequest:
    return "stats-request";
  case FrameType::Ping:
    return "ping";
  case FrameType::Result:
    return "result";
  case FrameType::Stats:
    return "stats";
  case FrameType::Error:
    return "error";
  case FrameType::GoingAway:
    return "going-away";
  case FrameType::Pong:
    return "pong";
  }
  return "unknown";
}

const char *net::responseCodeName(ResponseCode Code) {
  switch (Code) {
  case ResponseCode::Ok:
    return "OK";
  case ResponseCode::Failed:
    return "FAILED";
  case ResponseCode::Cancelled:
    return "CANCELLED";
  case ResponseCode::DeadlineExceeded:
    return "DEADLINE_EXCEEDED";
  case ResponseCode::RetryLater:
    return "RETRYING_LATER";
  case ResponseCode::GoingAway:
    return "GOING_AWAY";
  case ResponseCode::Malformed:
    return "MALFORMED";
  }
  return "UNKNOWN";
}

uint64_t StatsFrame::counter(std::string_view Name) const {
  for (const auto &KV : Counters)
    if (KV.first == Name)
      return KV.second;
  return 0;
}

//===----------------------------------------------------------------------===//
// Encoding
//===----------------------------------------------------------------------===//

/// Wraps \p Payload in the [u32 Length][u8 Type] header.
static std::string wrapFrame(FrameType Type, const BinaryWriter &Payload) {
  std::string Out;
  uint32_t Length = static_cast<uint32_t>(1 + Payload.size());
  Out.reserve(4 + Length);
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>(Length >> (8 * I)));
  Out.push_back(static_cast<char>(Type));
  Out.append(reinterpret_cast<const char *>(Payload.bytes().data()),
             Payload.size());
  return Out;
}

std::string net::encodeCompile(const CompileFrame &F) {
  BinaryWriter W;
  W.writeU64(F.RequestId);
  W.writeU8(static_cast<uint8_t>(F.Kind));
  W.writeI64(F.Priority);
  W.writeU32(F.DeadlineMs);
  W.writeF64(F.Gamma);
  W.writeF64(F.Beta);
  W.writeI64(F.Layers);
  W.writeU8(F.Measure ? 1 : 0);
  W.writeU8(F.Compressed ? 1 : 0);
  W.writeU8(static_cast<uint8_t>(F.Source));
  if (F.Source == FormulaSource::Satlib) {
    W.writeI64(F.NumVars);
    W.writeI64(F.Index);
  } else {
    W.writeString(F.Dimacs);
  }
  return wrapFrame(FrameType::CompileRequest, W);
}

std::string net::encodeCancel(const CancelFrame &F) {
  BinaryWriter W;
  W.writeU64(F.RequestId);
  return wrapFrame(FrameType::CancelRequest, W);
}

std::string net::encodeStatsRequest() {
  return wrapFrame(FrameType::StatsRequest, BinaryWriter());
}

std::string net::encodePing() {
  return wrapFrame(FrameType::Ping, BinaryWriter());
}

std::string net::encodeResult(const ResultFrame &F) {
  BinaryWriter W;
  W.writeU64(F.RequestId);
  W.writeU8(static_cast<uint8_t>(F.Code));
  W.writeU32(F.BackoffMs);
  W.writeF64(F.QueueSeconds);
  W.writeF64(F.CompileSeconds);
  W.writeU8(F.CacheTier);
  W.writeU64(F.Pulses);
  W.writeString(F.Diagnostic);
  W.writeString(F.Wqasm);
  return wrapFrame(FrameType::Result, W);
}

std::string net::encodeStats(const StatsFrame &F) {
  BinaryWriter W;
  W.writeU64(F.Counters.size());
  for (const auto &KV : F.Counters) {
    W.writeString(KV.first);
    W.writeU64(KV.second);
  }
  W.writeString(F.Text);
  return wrapFrame(FrameType::Stats, W);
}

std::string net::encodeError(const ErrorFrame &F) {
  BinaryWriter W;
  W.writeU8(static_cast<uint8_t>(F.Code));
  W.writeString(F.Message);
  return wrapFrame(FrameType::Error, W);
}

std::string net::encodeGoingAway(const std::string &Reason) {
  BinaryWriter W;
  W.writeString(Reason);
  return wrapFrame(FrameType::GoingAway, W);
}

std::string net::encodePong() {
  return wrapFrame(FrameType::Pong, BinaryWriter());
}

//===----------------------------------------------------------------------===//
// Decoding
//===----------------------------------------------------------------------===//

/// Requires the reader to be healthy with no trailing bytes — a payload
/// longer than its fields is as suspect as a truncated one.
static Status finishDecode(const BinaryReader &R, const char *What) {
  if (!R.ok())
    return Status::error(std::string("truncated or malformed ") + What +
                         " payload");
  if (R.remaining() != 0)
    return Status::error(std::string("trailing bytes after ") + What +
                         " payload");
  return Status::success();
}

Status net::validateCompileParams(const CompileFrame &F) {
  bool KnownKind = false;
  for (baselines::BackendKind K : baselines::AllBackendKinds)
    KnownKind |= K == F.Kind;
  if (!KnownKind)
    return Status::error("unknown backend kind in compile request");
  if (!std::isfinite(F.Gamma) || !std::isfinite(F.Beta))
    return Status::error("non-finite QAOA angle in compile request");
  if (F.Layers < 1 || F.Layers > MaxRequestLayers)
    return Status::error("QAOA layer count out of range [1, " +
                         std::to_string(MaxRequestLayers) + "]");
  if (F.Priority < -MaxRequestPriority || F.Priority > MaxRequestPriority)
    return Status::error("priority out of range");
  if (F.DeadlineMs > MaxDeadlineMs)
    return Status::error("deadline exceeds limit of " +
                         std::to_string(MaxDeadlineMs) + " ms");
  if (F.Source == FormulaSource::Satlib) {
    if (F.NumVars < 1 || F.NumVars > MaxRequestVars)
      return Status::error("satlib variable count out of range [1, " +
                           std::to_string(MaxRequestVars) + "]");
    if (F.Index < 1 || F.Index > MaxRequestIndex)
      return Status::error("satlib instance index out of range [1, " +
                           std::to_string(MaxRequestIndex) + "]");
  } else if (F.Source == FormulaSource::Dimacs) {
    if (F.Dimacs.empty())
      return Status::error("empty DIMACS text in compile request");
  } else {
    return Status::error("unknown formula source in compile request");
  }
  return Status::success();
}

Expected<CompileFrame> net::decodeCompile(std::string_view Payload) {
  BinaryReader R(Payload.data(), Payload.size());
  CompileFrame F;
  F.RequestId = R.readU64();
  F.Kind = static_cast<baselines::BackendKind>(R.readU8());
  int64_t Priority = R.readI64();
  F.DeadlineMs = R.readU32();
  F.Gamma = R.readF64();
  F.Beta = R.readF64();
  int64_t Layers = R.readI64();
  F.Measure = R.readU8() != 0;
  F.Compressed = R.readU8() != 0;
  uint8_t Source = R.readU8();
  if (Source > 1) {
    return Expected<CompileFrame>::error(
        "unknown formula source in compile request");
  }
  F.Source = static_cast<FormulaSource>(Source);
  int64_t NumVars = 0, Index = 0;
  if (F.Source == FormulaSource::Satlib) {
    NumVars = R.readI64();
    Index = R.readI64();
  } else {
    F.Dimacs = R.readString();
  }
  if (Status S = finishDecode(R, "compile"))
    return Expected<CompileFrame>::error(S.message());
  // Range-check the wide wire integers before narrowing them.
  if (Priority < INT32_MIN || Priority > INT32_MAX || Layers < INT32_MIN ||
      Layers > INT32_MAX || NumVars < INT32_MIN || NumVars > INT32_MAX ||
      Index < INT32_MIN || Index > INT32_MAX)
    return Expected<CompileFrame>::error(
        "integer field out of range in compile request");
  F.Priority = static_cast<int32_t>(Priority);
  F.Layers = static_cast<int32_t>(Layers);
  F.NumVars = static_cast<int32_t>(NumVars);
  F.Index = static_cast<int32_t>(Index);
  if (Status S = validateCompileParams(F))
    return Expected<CompileFrame>::error(S.message());
  return F;
}

Expected<CancelFrame> net::decodeCancel(std::string_view Payload) {
  BinaryReader R(Payload.data(), Payload.size());
  CancelFrame F;
  F.RequestId = R.readU64();
  if (Status S = finishDecode(R, "cancel"))
    return Expected<CancelFrame>::error(S.message());
  return F;
}

Expected<ResultFrame> net::decodeResult(std::string_view Payload) {
  BinaryReader R(Payload.data(), Payload.size());
  ResultFrame F;
  F.RequestId = R.readU64();
  uint8_t Code = R.readU8();
  if (Code > static_cast<uint8_t>(ResponseCode::Malformed))
    return Expected<ResultFrame>::error("unknown response code");
  F.Code = static_cast<ResponseCode>(Code);
  F.BackoffMs = R.readU32();
  F.QueueSeconds = R.readF64();
  F.CompileSeconds = R.readF64();
  F.CacheTier = R.readU8();
  F.Pulses = R.readU64();
  F.Diagnostic = R.readString();
  F.Wqasm = R.readString();
  if (Status S = finishDecode(R, "result"))
    return Expected<ResultFrame>::error(S.message());
  return F;
}

Expected<StatsFrame> net::decodeStats(std::string_view Payload) {
  BinaryReader R(Payload.data(), Payload.size());
  StatsFrame F;
  size_t Count = R.readLength(/*MinElemBytes=*/16);
  F.Counters.reserve(Count);
  for (size_t I = 0; I < Count && R.ok(); ++I) {
    std::string Name = R.readString();
    uint64_t Value = R.readU64();
    F.Counters.emplace_back(std::move(Name), Value);
  }
  F.Text = R.readString();
  if (Status S = finishDecode(R, "stats"))
    return Expected<StatsFrame>::error(S.message());
  return F;
}

Expected<ErrorFrame> net::decodeError(std::string_view Payload) {
  BinaryReader R(Payload.data(), Payload.size());
  ErrorFrame F;
  uint8_t Code = R.readU8();
  if (Code > static_cast<uint8_t>(ResponseCode::Malformed))
    return Expected<ErrorFrame>::error("unknown response code");
  F.Code = static_cast<ResponseCode>(Code);
  F.Message = R.readString();
  if (Status S = finishDecode(R, "error"))
    return Expected<ErrorFrame>::error(S.message());
  return F;
}

Expected<std::string> net::decodeGoingAway(std::string_view Payload) {
  BinaryReader R(Payload.data(), Payload.size());
  std::string Reason = R.readString();
  if (Status S = finishDecode(R, "going-away"))
    return Expected<std::string>::error(S.message());
  return Reason;
}

//===----------------------------------------------------------------------===//
// FrameParser
//===----------------------------------------------------------------------===//

bool FrameParser::feed(const char *Data, size_t Len) {
  if (Poisoned)
    return false;
  // Compact once the parsed prefix dominates the buffer, so a long-lived
  // connection doesn't grow its buffer without bound.
  if (Consumed > 4096 && Consumed >= Buf.size() / 2) {
    Buf.erase(0, Consumed);
    Consumed = 0;
  }
  Buf.append(Data, Len);
  // Validate the pending frame's length prefix eagerly: a hostile prefix
  // poisons the stream the moment it arrives, so the connection can be
  // dropped now instead of idling until a read timeout.
  if (Buf.size() - Consumed >= 4) {
    const unsigned char *P =
        reinterpret_cast<const unsigned char *>(Buf.data()) + Consumed;
    uint32_t Length = static_cast<uint32_t>(P[0]) |
                      (static_cast<uint32_t>(P[1]) << 8) |
                      (static_cast<uint32_t>(P[2]) << 16) |
                      (static_cast<uint32_t>(P[3]) << 24);
    if (Length == 0 || Length > MaxFrame) {
      Poisoned = true;
      return false;
    }
  }
  return true;
}

bool FrameParser::next(Frame &Out) {
  if (Poisoned)
    return false;
  size_t Avail = Buf.size() - Consumed;
  if (Avail < 4)
    return false;
  const unsigned char *P =
      reinterpret_cast<const unsigned char *>(Buf.data()) + Consumed;
  uint32_t Length = static_cast<uint32_t>(P[0]) |
                    (static_cast<uint32_t>(P[1]) << 8) |
                    (static_cast<uint32_t>(P[2]) << 16) |
                    (static_cast<uint32_t>(P[3]) << 24);
  if (Length == 0 || Length > MaxFrame) {
    Poisoned = true;
    return false;
  }
  if (Avail < 4 + static_cast<size_t>(Length))
    return false;
  Out.Type = static_cast<FrameType>(P[4]);
  Out.Payload.assign(Buf.data() + Consumed + 5, Length - 1);
  Consumed += 4 + Length;
  return true;
}

//===----------------------------------------------------------------------===//
// Serve-mode command lines
//===----------------------------------------------------------------------===//

Expected<ServeCommand> net::parseServeCommand(std::string_view Line) {
  using EC = Expected<ServeCommand>;
  if (Line.size() > MaxCommandLineBytes)
    return EC::error("command line exceeds " +
                     std::to_string(MaxCommandLineBytes) + " bytes");
  if (Line.find('\0') != std::string_view::npos)
    return EC::error("NUL byte in command line");
  auto Fields = split(trim(Line), ' ');
  if (Fields.empty())
    return EC::error("empty command line");

  ServeCommand Cmd;
  std::string_view Verb = Fields[0];
  if (Verb == "quit" || Verb == "exit") {
    if (Fields.size() != 1)
      return EC::error("quit takes no arguments");
    Cmd.Act = ServeCommand::Action::Quit;
    return Cmd;
  }
  if (Verb == "stats") {
    if (Fields.size() != 1)
      return EC::error("stats takes no arguments");
    Cmd.Act = ServeCommand::Action::Stats;
    return Cmd;
  }
  if (Verb == "cancel") {
    if (Fields.size() != 2)
      return EC::error("usage: cancel <jobid>");
    auto Id = parseBoundedInt(Fields[1], 0, INT64_MAX);
    if (!Id)
      return EC::error("invalid job id: " + Id.status().message());
    Cmd.Act = ServeCommand::Action::Cancel;
    Cmd.CancelId = static_cast<uint64_t>(*Id);
    return Cmd;
  }
  if (Verb == "file") {
    if (Fields.size() < 2 || Fields.size() > 3)
      return EC::error("usage: file <path> [backend]");
    Cmd.Act = ServeCommand::Action::File;
    Cmd.Path = std::string(Fields[1]);
    if (Fields.size() == 3) {
      auto Kind = baselines::backendKindFromName(std::string(Fields[2]));
      if (!Kind)
        return EC::error(Kind.status().message());
      Cmd.FileKind = *Kind;
    }
    return Cmd;
  }
  if (Verb == "compile") {
    // compile <backend> <nvars> <index> [gamma beta [priority [deadline]]]
    if (Fields.size() < 4 || Fields.size() > 8 || Fields.size() == 5)
      return EC::error("usage: compile <backend> <nvars> <index> "
                       "[gamma beta [priority [deadline_ms]]]");
    auto Kind = baselines::backendKindFromName(std::string(Fields[1]));
    if (!Kind)
      return EC::error(Kind.status().message());
    auto NumVars = parseBoundedInt(Fields[2], 1, MaxRequestVars);
    if (!NumVars)
      return EC::error("invalid nvars: " + NumVars.status().message());
    auto Index = parseBoundedInt(Fields[3], 1, MaxRequestIndex);
    if (!Index)
      return EC::error("invalid index: " + Index.status().message());
    Cmd.Act = ServeCommand::Action::Compile;
    Cmd.Compile.Kind = *Kind;
    Cmd.Compile.NumVars = static_cast<int32_t>(*NumVars);
    Cmd.Compile.Index = static_cast<int32_t>(*Index);
    if (Fields.size() >= 6) {
      auto Gamma = parseFiniteDouble(Fields[4]);
      if (!Gamma)
        return EC::error("invalid gamma: " + Gamma.status().message());
      auto Beta = parseFiniteDouble(Fields[5]);
      if (!Beta)
        return EC::error("invalid beta: " + Beta.status().message());
      Cmd.Compile.Gamma = *Gamma;
      Cmd.Compile.Beta = *Beta;
    }
    if (Fields.size() >= 7) {
      auto Priority =
          parseBoundedInt(Fields[6], -MaxRequestPriority, MaxRequestPriority);
      if (!Priority)
        return EC::error("invalid priority: " + Priority.status().message());
      Cmd.Compile.Priority = static_cast<int32_t>(*Priority);
    }
    if (Fields.size() == 8) {
      auto Deadline = parseBoundedInt(Fields[7], 0, MaxDeadlineMs);
      if (!Deadline)
        return EC::error("invalid deadline: " + Deadline.status().message());
      Cmd.Compile.DeadlineMs = static_cast<uint32_t>(*Deadline);
    }
    if (Status S = validateCompileParams(Cmd.Compile))
      return EC::error(S.message());
    return Cmd;
  }
  return EC::error("unknown command: '" + std::string(Verb) + "'");
}
