//===- net/Client.h - Frame-protocol client with retry ---------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Client side of the net::Protocol transport: connect with bounded
/// retries and jittered exponential backoff, pipelined frame send,
/// blocking and non-blocking frame receive, and a compileSync
/// convenience that honours the server's RETRYING_LATER backoff
/// contract. Used by tools/load_gen, tools/weaver_client-style callers,
/// and the transport tests.
///
/// Backoff policy: attempt K sleeps InitialBackoff * 2^K, capped at
/// MaxBackoff, times a uniform jitter in [0.5, 1.0] drawn from a seeded
/// generator — a thousand load-generator clients bouncing off a draining
/// server must not reconnect in lockstep, and a seeded test must replay
/// the same schedule.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_NET_CLIENT_H
#define WEAVER_NET_CLIENT_H

#include "net/Protocol.h"
#include "support/Rng.h"
#include "support/Socket.h"

#include <cstdint>
#include <string>

namespace weaver {
namespace net {

struct ClientOptions {
  std::string Host = "127.0.0.1";
  uint16_t Port = 0;
  /// Connect attempts before giving up.
  int MaxConnectAttempts = 8;
  double InitialBackoffSeconds = 0.05;
  double MaxBackoffSeconds = 2.0;
  /// Jitter/backoff randomness seed (deterministic per client).
  uint64_t Seed = 1;
  /// Default bound on blocking sends and receives.
  double IoTimeoutSeconds = 120;
};

class Client {
public:
  explicit Client(ClientOptions Options)
      : Options(Options), Rng(Options.Seed ? Options.Seed : 1),
        Parser(MaxResponseFrameBytes) {}

  /// Connects with retries and jittered exponential backoff.
  Status connect();
  bool connected() const { return Socket.valid(); }
  void close() { Socket.reset(); }
  int fd() const { return Socket.get(); }

  /// Blocking bounded-time send of pre-encoded frame bytes.
  Status sendBytes(const std::string &Bytes);

  Status sendCompile(const CompileFrame &F) {
    return sendBytes(encodeCompile(F));
  }
  Status sendCancel(uint64_t RequestId) {
    CancelFrame F;
    F.RequestId = RequestId;
    return sendBytes(encodeCancel(F));
  }
  Status sendStatsRequest() { return sendBytes(encodeStatsRequest()); }
  Status sendPing() { return sendBytes(encodePing()); }

  /// Blocks until one complete frame arrives (up to \p TimeoutSeconds;
  /// <= 0 uses Options.IoTimeoutSeconds).
  Expected<Frame> readFrame(double TimeoutSeconds = 0);

  /// Non-blocking receive: drains whatever the socket has and pops one
  /// frame if complete. Returns false with Out untouched when no full
  /// frame is buffered yet. Connection loss or poisoned framing closes
  /// the client (check connected()).
  bool tryReadFrame(Frame &Out);

  /// Round-trips one compile request. Transparently resubmits on
  /// RETRYING_LATER after honouring the server's suggested backoff, up
  /// to \p MaxAttempts submissions. Any other response — including
  /// DEADLINE_EXCEEDED and GOING_AWAY — is returned to the caller as a
  /// ResultFrame; only transport failures become errors.
  Expected<ResultFrame> compileSync(const CompileFrame &F,
                                    int MaxAttempts = 8);

  /// Round-trips a stats request.
  Expected<StatsFrame> stats();

  /// Next backoff duration for attempt \p Attempt (0-based), with
  /// jitter applied. Exposed for callers running their own retry loops.
  double backoffSeconds(int Attempt);

private:
  ClientOptions Options;
  Xoshiro256 Rng;
  FdHandle Socket;
  FrameParser Parser;
};

} // namespace net
} // namespace weaver

#endif // WEAVER_NET_CLIENT_H
