//===- net/Connection.h - Per-connection transport state -------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One accepted client connection: the socket, the incremental frame
/// parser on the read side, a bounded write queue on the write side, and
/// the robustness bookkeeping the server's poll loop needs — last-read
/// timestamp (read-idle and half-frame timeouts), write-progress
/// timestamp (slow-reader disconnect), in-flight request handles (cancel
/// and drain), and lifecycle flags. Connections are owned and driven
/// exclusively by the net::Server poll thread; nothing here locks.
///
/// The write queue is the anti-slowloris boundary: a client that stops
/// reading while results pile up hits MaxWriteQueueBytes and is
/// disconnected, so one slow reader cannot hold megabytes of wQASM
/// hostage per request or stall the poll loop. A client that stops
/// mid-frame on the read side hits the read-idle timeout instead.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_NET_CONNECTION_H
#define WEAVER_NET_CONNECTION_H

#include "net/FaultInjector.h"
#include "net/Protocol.h"
#include "support/Socket.h"

#include <chrono>
#include <cstdint>
#include <string>

namespace weaver {
namespace net {

class Connection {
public:
  using Clock = std::chrono::steady_clock;

  /// Outcome of one readAndParse() call.
  enum class ReadOutcome {
    Progress, ///< bytes arrived and were fed to the parser
    NoData,   ///< nothing available (or fault-injected delay)
    Closed,   ///< peer closed or connection error
    Poisoned, ///< framing violated (oversized/zero length prefix)
  };

  Connection(FdHandle Socket, uint64_t Id, size_t MaxFrameBytes,
             size_t MaxWriteQueueBytes)
      : Socket(std::move(Socket)), Id(Id), Parser(MaxFrameBytes),
        MaxWriteQueueBytes(MaxWriteQueueBytes), LastReadAt(Clock::now()),
        LastWriteProgressAt(Clock::now()) {}

  Connection(Connection &&) = default;
  Connection &operator=(Connection &&) = delete;
  Connection(const Connection &) = delete;
  Connection &operator=(const Connection &) = delete;

  uint64_t id() const { return Id; }
  int fd() const { return Socket.get(); }

  /// Drains the socket's receive buffer into the frame parser (one
  /// bounded gulp per call; the server's fairness cap decides how many
  /// frames actually get processed). Fault injection may delay or
  /// truncate the read.
  ReadOutcome readAndParse(FaultInjector &Faults);

  /// Pops the next complete request frame.
  bool nextFrame(Frame &Out) { return Parser.next(Out); }

  /// True while an incomplete frame sits in the parser (half-frame
  /// timeout applies then, not the longer idle timeout).
  bool hasPartialFrame() const { return Parser.pendingBytes() > 0; }

  /// Framing lost (hostile length prefix); the connection must close.
  bool poisoned() const { return Parser.poisoned(); }

  /// Appends \p Bytes to the write queue. Returns false when the queue
  /// would exceed its byte cap — the caller must disconnect; dropping a
  /// response frame silently would violate exactly-once delivery.
  bool queueWrite(const std::string &Bytes);

  /// Writes as much queued data as the socket accepts. Fault injection
  /// may shorten individual writes. Returns Error on hard failure, Ok
  /// otherwise (WouldBlock folds into Ok; poll's POLLOUT resumes us).
  IoResult flushWrites(FaultInjector &Faults);

  bool writePending() const { return WriteBuf.size() > WriteOff; }
  size_t writeQueueBytes() const { return WriteBuf.size() - WriteOff; }

  double secondsSinceRead(Clock::time_point Now) const {
    return std::chrono::duration<double>(Now - LastReadAt).count();
  }
  double secondsSinceWriteProgress(Clock::time_point Now) const {
    return std::chrono::duration<double>(Now - LastWriteProgressAt).count();
  }

  // -- Server bookkeeping (poll thread only) --------------------------------

  /// The server decided to close once the write queue flushes (error or
  /// going-away frame already queued).
  bool CloseAfterFlush = false;

  /// GoingAway was already sent; new requests are rejected.
  bool SentGoingAway = false;

private:
  FdHandle Socket;
  uint64_t Id;
  FrameParser Parser;
  size_t MaxWriteQueueBytes;

  std::string WriteBuf;
  size_t WriteOff = 0;

  Clock::time_point LastReadAt;
  Clock::time_point LastWriteProgressAt;
};

} // namespace net
} // namespace weaver

#endif // WEAVER_NET_CONNECTION_H
