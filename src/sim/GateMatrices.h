//===- sim/GateMatrices.h - Unitary semantics of gate kinds ----*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Returns the 2^k x 2^k unitary of each \c GateKind. The matrix basis
/// convention places the gate's *first* qubit operand in the most
/// significant bit of the local index, matching Qiskit's textbook matrices
/// for CX/CCZ when reading operands as (control..., target).
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_SIM_GATEMATRICES_H
#define WEAVER_SIM_GATEMATRICES_H

#include "circuit/Gate.h"
#include "sim/Matrix.h"

namespace weaver {
namespace sim {

/// Returns the unitary matrix of \p G. \p G must be unitary (not Barrier or
/// Measure).
Matrix gateUnitary(const circuit::Gate &G);

/// Returns the U3(theta, phi, lambda) matrix in the Qiskit convention:
///   [[cos(t/2),            -e^{i l} sin(t/2)      ],
///    [e^{i p} sin(t/2),     e^{i(p+l)} cos(t/2)   ]].
Matrix u3Matrix(double Theta, double Phi, double Lambda);

} // namespace sim
} // namespace weaver

#endif // WEAVER_SIM_GATEMATRICES_H
