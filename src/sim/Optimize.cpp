//===- sim/Optimize.cpp - Unitary-aware peephole passes -------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "sim/Optimize.h"

#include "sim/GateMatrices.h"

#include <cmath>
#include <optional>

using namespace weaver;
using namespace weaver::sim;
using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

void sim::zyzDecompose(const Matrix &U, double &Theta, double &Phi,
                       double &Lambda) {
  assert(U.rows() == 2 && U.cols() == 2 && "zyzDecompose needs a 2x2 matrix");
  const double Eps = 1e-12;
  Complex A = U.at(0, 0), B = U.at(0, 1), C = U.at(1, 0), D = U.at(1, 1);
  double MagA = std::abs(A), MagC = std::abs(C);
  Theta = 2 * std::atan2(MagC, MagA);
  if (MagC < Eps) {
    // Diagonal: only phi + lambda is determined; put it all in lambda.
    Phi = 0;
    Lambda = std::arg(D) - std::arg(A);
    return;
  }
  if (MagA < Eps) {
    // Anti-diagonal: only lambda - phi is determined (theta = pi).
    Phi = 0;
    Lambda = std::arg(-B) - std::arg(C);
    return;
  }
  double PhaseA = std::arg(A);
  Phi = std::arg(C) - PhaseA;
  Lambda = std::arg(-B) - PhaseA;
}

Circuit sim::mergeSingleQubitRuns(const Circuit &C, double IdentityTol) {
  Circuit Out(C.numQubits(), C.name());
  // Pending accumulated 2x2 unitary per qubit (product of a gate run).
  std::vector<std::optional<Matrix>> Pending(C.numQubits());

  auto Flush = [&](int Q) {
    if (!Pending[Q])
      return;
    const Matrix &U = *Pending[Q];
    if (!equalUpToGlobalPhase(U, Matrix::identity(2), IdentityTol)) {
      double Theta, Phi, Lambda;
      zyzDecompose(U, Theta, Phi, Lambda);
      Out.u3(Theta, Phi, Lambda, Q);
    }
    Pending[Q].reset();
  };

  for (const Gate &G : C) {
    if (G.kind() == GateKind::Barrier) {
      for (int Q = 0; Q < C.numQubits(); ++Q)
        Flush(Q);
      Out.append(G);
      continue;
    }
    if (G.kind() == GateKind::Measure) {
      Flush(G.qubit(0));
      Out.append(G);
      continue;
    }
    if (G.numQubits() == 1) {
      int Q = G.qubit(0);
      Matrix M = gateUnitary(G);
      Pending[Q] = Pending[Q] ? M.multiply(*Pending[Q]) : M;
      continue;
    }
    for (unsigned I = 0, E = G.numQubits(); I < E; ++I)
      Flush(G.qubit(I));
    Out.append(G);
  }
  for (int Q = 0; Q < C.numQubits(); ++Q)
    Flush(Q);
  return Out;
}
