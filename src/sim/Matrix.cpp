//===- sim/Matrix.cpp - Dense complex matrices ----------------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "sim/Matrix.h"

#include <cmath>

using namespace weaver;
using namespace weaver::sim;

bool sim::equalUpToGlobalPhase(const Matrix &A, const Matrix &B, double Tol) {
  if (A.rows() != B.rows() || A.cols() != B.cols())
    return false;
  // Find the largest element of A to anchor the phase estimate.
  size_t BestR = 0, BestC = 0;
  double BestMag = -1;
  for (size_t R = 0; R < A.rows(); ++R)
    for (size_t C = 0; C < A.cols(); ++C) {
      double Mag = std::abs(A.at(R, C));
      if (Mag > BestMag) {
        BestMag = Mag;
        BestR = R;
        BestC = C;
      }
    }
  if (BestMag < Tol) {
    // A is (numerically) zero; matrices match only if B is too.
    for (size_t R = 0; R < B.rows(); ++R)
      for (size_t C = 0; C < B.cols(); ++C)
        if (std::abs(B.at(R, C)) > Tol)
          return false;
    return true;
  }
  Complex Anchor = B.at(BestR, BestC) / A.at(BestR, BestC);
  // For unitaries the phase has unit magnitude; reject other scalings.
  if (std::abs(std::abs(Anchor) - 1.0) > Tol)
    return false;
  for (size_t R = 0; R < A.rows(); ++R)
    for (size_t C = 0; C < A.cols(); ++C)
      if (std::abs(A.at(R, C) * Anchor - B.at(R, C)) > Tol)
        return false;
  return true;
}
