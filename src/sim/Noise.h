//===- sim/Noise.h - Monte-Carlo Pauli noise simulation --------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trajectory-sampling noisy simulation: after every gate, each operand
/// suffers a uniform random Pauli error with the gate class's error
/// probability (a depolarizing channel unravelled into trajectories). Used
/// to validate the analytic EPS model of §8.4 — the probability that a
/// run produces the ideal outcome tracks the accumulated per-gate
/// fidelities — and by the examples to show noisy output distributions.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_SIM_NOISE_H
#define WEAVER_SIM_NOISE_H

#include "circuit/Circuit.h"

#include <cstdint>
#include <vector>

namespace weaver {
namespace sim {

/// Per-gate-class error probabilities (1 - fidelity).
struct NoiseModel {
  double OneQubitError = 0.0003;
  double TwoQubitError = 0.005;
  double ThreeQubitError = 0.02;
};

/// Result of a Monte-Carlo noisy run.
struct NoisyRunResult {
  /// Mean output distribution over trajectories.
  std::vector<double> Distribution;
  /// Fraction of trajectories with no injected error (the gate-level EPS
  /// the analytic model predicts).
  double ErrorFreeFraction = 0;
  /// Classical (Bhattacharyya/Hellinger-style) fidelity between the noisy
  /// and the ideal distribution.
  double HellingerFidelity = 0;
};

/// Simulates \p Shots noisy trajectories of \p C (<= 20 qubits; barriers
/// skipped, measurements ignored for state evolution).
NoisyRunResult simulateNoisy(const circuit::Circuit &C,
                             const NoiseModel &Noise, int Shots,
                             uint64_t Seed = 1);

} // namespace sim
} // namespace weaver

#endif // WEAVER_SIM_NOISE_H
