//===- sim/Matrix.h - Dense complex matrices -------------------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal dense complex matrix used for gate unitaries and the wChecker
/// unitary equivalence check (paper §6, Fig. 9).
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_SIM_MATRIX_H
#define WEAVER_SIM_MATRIX_H

#include <cassert>
#include <complex>
#include <cstddef>
#include <vector>

namespace weaver {
namespace sim {

using Complex = std::complex<double>;

/// Row-major dense complex matrix.
class Matrix {
public:
  Matrix() = default;
  Matrix(size_t Rows, size_t Cols)
      : RowCount(Rows), ColCount(Cols), Data(Rows * Cols, Complex(0, 0)) {}

  /// Returns the identity matrix of dimension \p N.
  static Matrix identity(size_t N) {
    Matrix M(N, N);
    for (size_t I = 0; I < N; ++I)
      M.at(I, I) = Complex(1, 0);
    return M;
  }

  size_t rows() const { return RowCount; }
  size_t cols() const { return ColCount; }

  Complex &at(size_t R, size_t C) {
    assert(R < RowCount && C < ColCount && "matrix index out of range");
    return Data[R * ColCount + C];
  }
  const Complex &at(size_t R, size_t C) const {
    assert(R < RowCount && C < ColCount && "matrix index out of range");
    return Data[R * ColCount + C];
  }

  /// Matrix product this * Other.
  Matrix multiply(const Matrix &Other) const {
    assert(ColCount == Other.RowCount && "matrix dimension mismatch");
    Matrix Out(RowCount, Other.ColCount);
    for (size_t I = 0; I < RowCount; ++I)
      for (size_t K = 0; K < ColCount; ++K) {
        Complex V = at(I, K);
        if (V == Complex(0, 0))
          continue;
        for (size_t J = 0; J < Other.ColCount; ++J)
          Out.at(I, J) += V * Other.at(K, J);
      }
    return Out;
  }

  /// Conjugate transpose.
  Matrix dagger() const {
    Matrix Out(ColCount, RowCount);
    for (size_t I = 0; I < RowCount; ++I)
      for (size_t J = 0; J < ColCount; ++J)
        Out.at(J, I) = std::conj(at(I, J));
    return Out;
  }

  /// Max-norm distance to \p Other.
  double maxAbsDiff(const Matrix &Other) const {
    assert(RowCount == Other.RowCount && ColCount == Other.ColCount &&
           "matrix dimension mismatch");
    double Max = 0;
    for (size_t I = 0; I < Data.size(); ++I)
      Max = std::max(Max, std::abs(Data[I] - Other.Data[I]));
    return Max;
  }

  /// Returns true if this is unitary within \p Tol.
  bool isUnitary(double Tol = 1e-9) const {
    if (RowCount != ColCount)
      return false;
    return multiply(dagger()).maxAbsDiff(identity(RowCount)) < Tol;
  }

private:
  size_t RowCount = 0, ColCount = 0;
  std::vector<Complex> Data;
};

/// Returns true when \p A equals \p B up to a global phase factor, within
/// element-wise tolerance \p Tol.
bool equalUpToGlobalPhase(const Matrix &A, const Matrix &B, double Tol = 1e-8);

} // namespace sim
} // namespace weaver

#endif // WEAVER_SIM_MATRIX_H
