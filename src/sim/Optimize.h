//===- sim/Optimize.h - Unitary-aware peephole passes ----------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Single-qubit run merging via ZYZ (U3) re-synthesis. On the FPQA path each
/// remaining 1-qubit gate becomes one Raman pulse, so merging adjacent runs
/// directly reduces the pulse count the paper reports (Fig. 10b).
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_SIM_OPTIMIZE_H
#define WEAVER_SIM_OPTIMIZE_H

#include "circuit/Circuit.h"
#include "sim/Matrix.h"

namespace weaver {
namespace sim {

/// Extracts U3 angles (up to global phase) from a 2x2 unitary.
void zyzDecompose(const Matrix &U, double &Theta, double &Phi, double &Lambda);

/// Merges maximal runs of adjacent 1-qubit unitaries on the same qubit into
/// a single U3 gate (identity runs are dropped). Multi-qubit gates,
/// barriers and measurements act as flush points.
circuit::Circuit mergeSingleQubitRuns(const circuit::Circuit &C,
                                      double IdentityTol = 1e-10);

} // namespace sim
} // namespace weaver

#endif // WEAVER_SIM_OPTIMIZE_H
