//===- sim/StateVector.cpp - Dense state-vector simulator ----------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "sim/StateVector.h"

#include "sim/GateMatrices.h"

#include <cmath>

using namespace weaver;
using namespace weaver::sim;
using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

StateVector::StateVector(int NumQubits) : StateVector(NumQubits, 0) {}

StateVector::StateVector(int NumQubits, uint64_t Basis)
    : QubitCount(NumQubits) {
  assert(NumQubits >= 0 && NumQubits <= 24 &&
         "state vector limited to 24 qubits");
  Amps.assign(size_t(1) << NumQubits, Complex(0, 0));
  assert(Basis < Amps.size() && "basis state out of range");
  Amps[Basis] = Complex(1, 0);
}

void StateVector::applyUnitary(const Matrix &U, const std::vector<int> &Qubits) {
  unsigned K = Qubits.size();
  assert(U.rows() == (size_t(1) << K) && U.cols() == U.rows() &&
         "unitary dimension does not match qubit count");
  for ([[maybe_unused]] int Q : Qubits)
    assert(Q >= 0 && Q < QubitCount && "qubit index out of range");

  // Mask of the operand bits within a global index.
  uint64_t OperandMask = 0;
  for (int Q : Qubits)
    OperandMask |= uint64_t(1) << Q;

  size_t LocalDim = size_t(1) << K;
  std::vector<uint64_t> LocalToGlobal(LocalDim, 0);
  for (size_t L = 0; L < LocalDim; ++L) {
    uint64_t Bits = 0;
    for (unsigned I = 0; I < K; ++I)
      // First operand is the most significant local bit.
      if (L >> (K - 1 - I) & 1)
        Bits |= uint64_t(1) << Qubits[I];
    LocalToGlobal[L] = Bits;
  }

  std::vector<Complex> Gathered(LocalDim);
  uint64_t Dim = Amps.size();
  for (uint64_t Base = 0; Base < Dim; ++Base) {
    if (Base & OperandMask)
      continue; // enumerate only indices with operand bits clear
    for (size_t L = 0; L < LocalDim; ++L)
      Gathered[L] = Amps[Base | LocalToGlobal[L]];
    for (size_t R = 0; R < LocalDim; ++R) {
      Complex Sum(0, 0);
      for (size_t Ci = 0; Ci < LocalDim; ++Ci)
        Sum += U.at(R, Ci) * Gathered[Ci];
      Amps[Base | LocalToGlobal[R]] = Sum;
    }
  }
}

void StateVector::applyGate(const Gate &G) {
  if (G.kind() == GateKind::Barrier)
    return;
  assert(G.kind() != GateKind::Measure &&
         "state vector cannot apply mid-circuit measurement");
  std::vector<int> Qubits;
  for (unsigned I = 0, E = G.numQubits(); I < E; ++I)
    Qubits.push_back(G.qubit(I));
  applyUnitary(gateUnitary(G), Qubits);
}

void StateVector::applyCircuit(const Circuit &C) {
  assert(C.numQubits() <= QubitCount && "circuit wider than state vector");
  for (const Gate &G : C) {
    if (G.kind() == GateKind::Measure)
      continue; // trailing measurements are ignored for state evolution
    applyGate(G);
  }
}

std::vector<double> StateVector::probabilities() const {
  std::vector<double> P(Amps.size());
  for (size_t I = 0; I < Amps.size(); ++I)
    P[I] = std::norm(Amps[I]);
  return P;
}

double StateVector::fidelityWith(const StateVector &Other) const {
  assert(Amps.size() == Other.Amps.size() && "dimension mismatch");
  Complex Overlap(0, 0);
  for (size_t I = 0; I < Amps.size(); ++I)
    Overlap += std::conj(Amps[I]) * Other.Amps[I];
  return std::norm(Overlap);
}

double StateVector::norm() const {
  double Sum = 0;
  for (const Complex &A : Amps)
    Sum += std::norm(A);
  return std::sqrt(Sum);
}

Matrix sim::circuitUnitary(const Circuit &C) {
  assert(C.numQubits() <= 12 && "unitary construction limited to 12 qubits");
  size_t Dim = size_t(1) << C.numQubits();
  Matrix U(Dim, Dim);
  for (uint64_t Col = 0; Col < Dim; ++Col) {
    StateVector SV(C.numQubits(), Col);
    SV.applyCircuit(C);
    for (uint64_t Row = 0; Row < Dim; ++Row)
      U.at(Row, Col) = SV.amplitude(Row);
  }
  return U;
}

bool sim::circuitsEquivalent(const Circuit &A, const Circuit &B, double Tol) {
  if (A.numQubits() != B.numQubits())
    return false;
  return equalUpToGlobalPhase(circuitUnitary(A.withoutNonUnitary()),
                              circuitUnitary(B.withoutNonUnitary()), Tol);
}
