//===- sim/Noise.cpp - Monte-Carlo Pauli noise simulation ------------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "sim/Noise.h"

#include "sim/StateVector.h"
#include "support/Rng.h"

#include <cmath>

using namespace weaver;
using namespace weaver::sim;
using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

NoisyRunResult sim::simulateNoisy(const Circuit &C, const NoiseModel &Noise,
                                  int Shots, uint64_t Seed) {
  assert(Shots > 0 && "at least one trajectory required");
  size_t Dim = size_t(1) << C.numQubits();
  NoisyRunResult Result;
  Result.Distribution.assign(Dim, 0.0);

  // Ideal reference for the Hellinger fidelity.
  StateVector Ideal(C.numQubits());
  Ideal.applyCircuit(C);
  std::vector<double> IdealProbs = Ideal.probabilities();

  Xoshiro256 Rng(Seed);
  int ErrorFree = 0;
  for (int Shot = 0; Shot < Shots; ++Shot) {
    StateVector SV(C.numQubits());
    bool HadError = false;
    for (const Gate &G : C) {
      if (G.kind() == GateKind::Barrier || G.kind() == GateKind::Measure)
        continue;
      SV.applyGate(G);
      double ErrorProb = G.numQubits() == 1   ? Noise.OneQubitError
                         : G.numQubits() == 2 ? Noise.TwoQubitError
                                              : Noise.ThreeQubitError;
      if (Rng.nextDouble() >= ErrorProb)
        continue;
      HadError = true;
      // Inject a uniformly random non-identity Pauli on one operand.
      int Q = G.qubit(static_cast<unsigned>(Rng.nextBelow(G.numQubits())));
      switch (Rng.nextBelow(3)) {
      case 0:
        SV.applyGate(Gate(GateKind::X, {Q}));
        break;
      case 1:
        SV.applyGate(Gate(GateKind::Y, {Q}));
        break;
      default:
        SV.applyGate(Gate(GateKind::Z, {Q}));
        break;
      }
    }
    ErrorFree += !HadError;
    std::vector<double> P = SV.probabilities();
    for (size_t I = 0; I < Dim; ++I)
      Result.Distribution[I] += P[I] / Shots;
  }
  Result.ErrorFreeFraction = static_cast<double>(ErrorFree) / Shots;

  double Bhattacharyya = 0;
  for (size_t I = 0; I < Dim; ++I)
    Bhattacharyya += std::sqrt(Result.Distribution[I] * IdealProbs[I]);
  Result.HellingerFidelity = Bhattacharyya * Bhattacharyya;
  return Result;
}
