//===- sim/GateMatrices.cpp - Unitary semantics of gate kinds ------------===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//

#include "sim/GateMatrices.h"

#include <cmath>

using namespace weaver;
using namespace weaver::sim;
using circuit::Gate;
using circuit::GateKind;

Matrix sim::u3Matrix(double Theta, double Phi, double Lambda) {
  Matrix M(2, 2);
  double C = std::cos(Theta / 2), S = std::sin(Theta / 2);
  M.at(0, 0) = Complex(C, 0);
  M.at(0, 1) = -std::polar(S, Lambda);
  M.at(1, 0) = std::polar(S, Phi);
  M.at(1, 1) = std::polar(C, Phi + Lambda);
  return M;
}

namespace {

Matrix pauli(GateKind Kind) {
  Matrix M(2, 2);
  switch (Kind) {
  case GateKind::I:
    return Matrix::identity(2);
  case GateKind::X:
    M.at(0, 1) = M.at(1, 0) = 1;
    return M;
  case GateKind::Y:
    M.at(0, 1) = Complex(0, -1);
    M.at(1, 0) = Complex(0, 1);
    return M;
  case GateKind::Z:
    M.at(0, 0) = 1;
    M.at(1, 1) = -1;
    return M;
  default:
    assert(false && "not a Pauli");
    return M;
  }
}

Matrix phaseGate(double Angle) {
  Matrix M = Matrix::identity(2);
  M.at(1, 1) = std::polar(1.0, Angle);
  return M;
}

Matrix rotation(GateKind Axis, double Theta) {
  double C = std::cos(Theta / 2), S = std::sin(Theta / 2);
  Matrix M(2, 2);
  switch (Axis) {
  case GateKind::RX:
    M.at(0, 0) = M.at(1, 1) = C;
    M.at(0, 1) = M.at(1, 0) = Complex(0, -S);
    return M;
  case GateKind::RY:
    M.at(0, 0) = M.at(1, 1) = C;
    M.at(0, 1) = -S;
    M.at(1, 0) = S;
    return M;
  case GateKind::RZ:
    M.at(0, 0) = std::polar(1.0, -Theta / 2);
    M.at(1, 1) = std::polar(1.0, Theta / 2);
    return M;
  default:
    assert(false && "not a rotation axis");
    return M;
  }
}

} // namespace

Matrix sim::gateUnitary(const Gate &G) {
  constexpr double Pi = 3.14159265358979323846;
  constexpr double InvSqrt2 = 0.70710678118654752440;
  switch (G.kind()) {
  case GateKind::I:
  case GateKind::X:
  case GateKind::Y:
  case GateKind::Z:
    return pauli(G.kind());
  case GateKind::H: {
    Matrix M(2, 2);
    M.at(0, 0) = M.at(0, 1) = M.at(1, 0) = InvSqrt2;
    M.at(1, 1) = -InvSqrt2;
    return M;
  }
  case GateKind::S:
    return phaseGate(Pi / 2);
  case GateKind::Sdg:
    return phaseGate(-Pi / 2);
  case GateKind::T:
    return phaseGate(Pi / 4);
  case GateKind::Tdg:
    return phaseGate(-Pi / 4);
  case GateKind::RX:
  case GateKind::RY:
  case GateKind::RZ:
    return rotation(G.kind(), G.param(0));
  case GateKind::U3:
    return u3Matrix(G.param(0), G.param(1), G.param(2));
  case GateKind::CX: {
    // Operands (control, target); control is the high local bit.
    Matrix M(4, 4);
    M.at(0, 0) = M.at(1, 1) = 1; // control 0: identity
    M.at(2, 3) = M.at(3, 2) = 1; // control 1: X on target
    return M;
  }
  case GateKind::CZ: {
    Matrix M = Matrix::identity(4);
    M.at(3, 3) = -1;
    return M;
  }
  case GateKind::SWAP: {
    Matrix M(4, 4);
    M.at(0, 0) = M.at(3, 3) = 1;
    M.at(1, 2) = M.at(2, 1) = 1;
    return M;
  }
  case GateKind::RZZ: {
    double Theta = G.param(0);
    Matrix M(4, 4);
    Complex Minus = std::polar(1.0, -Theta / 2);
    Complex Plus = std::polar(1.0, Theta / 2);
    M.at(0, 0) = Minus; // |00>: Z⊗Z = +1
    M.at(1, 1) = Plus;  // |01>: -1
    M.at(2, 2) = Plus;  // |10>: -1
    M.at(3, 3) = Minus; // |11>: +1
    return M;
  }
  case GateKind::CCX: {
    Matrix M = Matrix::identity(8);
    M.at(6, 6) = M.at(7, 7) = 0;
    M.at(6, 7) = M.at(7, 6) = 1; // controls (high bits) = 11: X on target
    return M;
  }
  case GateKind::CCZ: {
    Matrix M = Matrix::identity(8);
    M.at(7, 7) = -1;
    return M;
  }
  case GateKind::Barrier:
  case GateKind::Measure:
    break;
  }
  assert(false && "gateUnitary requires a unitary gate");
  return Matrix();
}
