//===- sim/StateVector.h - Dense state-vector simulator --------*- C++ -*-===//
//
// Part of the weaver-cpp reproduction of "Weaver" (CGO 2025). MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ideal (noise-free) dense state-vector simulation, used to validate the
/// QAOA encodings, to produce measurement distributions for the examples
/// (paper Fig. 1c), and as the engine behind the circuit-unitary builder.
///
/// Qubit 0 occupies the least significant bit of the state index.
///
//===----------------------------------------------------------------------===//

#ifndef WEAVER_SIM_STATEVECTOR_H
#define WEAVER_SIM_STATEVECTOR_H

#include "circuit/Circuit.h"
#include "sim/Matrix.h"

#include <cstdint>
#include <vector>

namespace weaver {
namespace sim {

/// Dense complex amplitude vector over n qubits (n <= 24).
class StateVector {
public:
  /// Initialises |0...0> over \p NumQubits qubits.
  explicit StateVector(int NumQubits);

  /// Initialises the computational basis state |Basis>.
  StateVector(int NumQubits, uint64_t Basis);

  int numQubits() const { return QubitCount; }
  size_t dimension() const { return Amps.size(); }
  const std::vector<Complex> &amplitudes() const { return Amps; }
  Complex amplitude(uint64_t Index) const { return Amps[Index]; }

  /// Applies a k-qubit unitary \p U (2^k x 2^k) to the listed qubits; the
  /// first listed qubit is the most significant local bit (matching
  /// \c gateUnitary).
  void applyUnitary(const Matrix &U, const std::vector<int> &Qubits);

  /// Applies one gate (Barrier is a no-op; Measure is rejected — use
  /// \c probabilities for sampling).
  void applyGate(const circuit::Gate &G);

  /// Applies every unitary gate of \p C (barriers skipped, measures must be
  /// absent or trailing).
  void applyCircuit(const circuit::Circuit &C);

  /// Returns |amp|^2 for every basis state.
  std::vector<double> probabilities() const;

  /// Squared overlap |<this|Other>|^2.
  double fidelityWith(const StateVector &Other) const;

  /// L2 norm (should stay 1 within numerical error).
  double norm() const;

private:
  int QubitCount;
  std::vector<Complex> Amps;
};

/// Builds the full 2^n x 2^n unitary of \p C by simulating each basis
/// column. Requires n <= 12 and no measurements.
Matrix circuitUnitary(const circuit::Circuit &C);

/// Returns true if the two circuits implement the same unitary up to global
/// phase (n <= 12).
bool circuitsEquivalent(const circuit::Circuit &A, const circuit::Circuit &B,
                        double Tol = 1e-8);

} // namespace sim
} // namespace weaver

#endif // WEAVER_SIM_STATEVECTOR_H
